#include "resilience/net/router.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <unordered_map>
#include <utility>

#include "resilience/net/client.hpp"
#include "resilience/net/resilient_client.hpp"
#include "resilience/service/jsonl_session.hpp"  // is_request_line
#include "resilience/service/serialize.hpp"
#include "resilience/service/sim_table.hpp"

namespace resilience::net {

namespace {

std::string default_shard_id(const ShardConfig& config) {
  return config.host + ":" + std::to_string(config.port);
}

/// Index of `value` in a simulate axis, -1 when absent. Exact double
/// comparison is correct here: canonical JSON round-trips doubles
/// bit-exactly, so a shard's cell echoes the very axis values the
/// router's sub-request carried.
int axis_index(const std::vector<double>& axis, double value) {
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (axis[i] == value) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

// ============================================================ ShardFleet ==

ShardFleet::ShardFleet(RouterOptions options)
    : options_(std::move(options)), ring_(options_.ring_vnodes) {
  shards_.reserve(options_.shards.size());
  for (ShardConfig config : options_.shards) {
    if (config.id.empty()) {
      config.id = default_shard_id(config);
    }
    Shard shard;
    shard.config = std::move(config);
    shard.up = true;  // optimistic: the first failure or probe corrects it
    ring_.add(shard.config.id);
    shards_.push_back(std::move(shard));
  }
}

ShardFleet::~ShardFleet() {
  {
    const std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) {
    prober_.join();
  }
}

void ShardFleet::start_prober() {
  if (options_.probe_interval_ms <= 0 || prober_.joinable()) {
    return;
  }
  prober_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(prober_mutex_);
    while (!prober_stop_) {
      prober_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.probe_interval_ms),
                          [this] { return prober_stop_; });
      if (prober_stop_) {
        return;
      }
      lock.unlock();
      probe_round();
      lock.lock();
    }
  });
}

void ShardFleet::probe_round() {
  // Probe every shard, Down ones included — a pong from a Down shard is
  // the rejoin signal. Snapshot the configs first; the pings themselves
  // run without the fleet lock.
  std::vector<ShardConfig> configs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    configs.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      configs.push_back(shard.config);
    }
  }
  for (const ShardConfig& config : configs) {
    ResilientClientOptions probe_options;
    probe_options.host = config.host;
    probe_options.port = config.port;
    probe_options.connect_timeout_ms = options_.connect_timeout_ms;
    probe_options.receive_timeout_ms = options_.receive_timeout_ms;
    probe_options.max_attempts = 1;
    probe_options.backoff_initial_ms = 1;
    probe_options.backoff_max_ms = 1;
    probe_options.jitter_seed = options_.jitter_seed;
    ResilientClient prober(probe_options);
    const bool alive = prober.ping();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.probes;
    }
    if (alive) {
      mark_up(config.id);
    } else {
      mark_down(config.id);
    }
  }
}

std::optional<std::string> ShardFleet::route(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.owner(key);
}

std::optional<ShardConfig> ShardFleet::config(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Shard* shard = find_locked(id);
  return shard == nullptr ? std::nullopt
                          : std::optional<ShardConfig>(shard->config);
}

std::vector<std::string> ShardFleet::shard_ids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    ids.push_back(shard.config.id);
  }
  return ids;
}

const ShardFleet::Shard* ShardFleet::find_locked(const std::string& id) const {
  for (const Shard& shard : shards_) {
    if (shard.config.id == id) {
      return &shard;
    }
  }
  return nullptr;
}

ShardFleet::Shard* ShardFleet::find_locked(const std::string& id) {
  return const_cast<Shard*>(
      static_cast<const ShardFleet*>(this)->find_locked(id));
}

bool ShardFleet::mark_down(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard* shard = find_locked(id);
  if (shard == nullptr || !shard->up) {
    return false;
  }
  shard->up = false;
  ring_.remove(id);
  ++counters_.rebalances;
  return true;
}

bool ShardFleet::mark_up(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Shard* shard = find_locked(id);
  if (shard == nullptr || shard->up) {
    return false;
  }
  shard->up = true;
  ring_.add(id);
  ++counters_.rebalances;
  return true;
}

bool ShardFleet::is_up(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Shard* shard = find_locked(id);
  return shard != nullptr && shard->up;
}

std::size_t ShardFleet::up_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void ShardFleet::note_request(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Shard* shard = find_locked(id)) {
    ++shard->requests;
  }
}

void ShardFleet::note_failure(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Shard* shard = find_locked(id)) {
    ++shard->failures;
  }
}

void ShardFleet::note_shed(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.sheds;
  if (Shard* shard = find_locked(id)) {
    ++shard->sheds;
  }
}

void ShardFleet::note_failover() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.failovers;
}

void ShardFleet::note_replays(std::size_t chains) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.replays += chains;
}

ShardFleet::Stats ShardFleet::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

util::JsonValue ShardFleet::stats_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue shards = util::JsonValue::array();
  for (const Shard& shard : shards_) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("id", shard.config.id);
    entry.set("host", shard.config.host);
    entry.set("port", shard.config.port);
    entry.set("state", shard.up ? "up" : "down");
    entry.set("requests", shard.requests);
    entry.set("failures", shard.failures);
    entry.set("sheds", shard.sheds);
    shards.push_back(std::move(entry));
  }
  util::JsonValue fleet = util::JsonValue::object();
  fleet.set("shards", std::move(shards));
  fleet.set("up", ring_.size());
  fleet.set("failovers", counters_.failovers);
  fleet.set("replays", counters_.replays);
  fleet.set("rebalances", counters_.rebalances);
  fleet.set("probes", counters_.probes);
  fleet.set("sheds", counters_.sheds);
  return fleet;
}

namespace {

/// Folds `addend` into `total` field by field: numbers sum, nested
/// objects recurse, anything else keeps the first value seen. Built for
/// the daemon's stats blocks, which are numeric counters all the way
/// down — and rebuilt key by key because JsonValue::find() is const-only.
void sum_json_counters(util::JsonValue& total, const util::JsonValue& addend) {
  if (!total.is_object() || !addend.is_object()) {
    return;
  }
  util::JsonValue merged = util::JsonValue::object();
  for (const auto& [key, value] : total.as_object()) {
    const util::JsonValue* other = addend.find(key);
    if (other == nullptr) {
      merged.set(key, value);
    } else if (value.is_number() && other->is_number()) {
      merged.set(key, value.as_double() + other->as_double());
    } else if (value.is_object() && other->is_object()) {
      util::JsonValue sub = value;
      sum_json_counters(sub, *other);
      merged.set(key, std::move(sub));
    } else {
      merged.set(key, value);
    }
  }
  // Fields the first reporter lacked (version skew across the fleet):
  // carry them through rather than dropping them.
  for (const auto& [key, value] : addend.as_object()) {
    if (merged.find(key) == nullptr) {
      merged.set(key, value);
    }
  }
  total = std::move(merged);
}

}  // namespace

util::JsonValue ShardFleet::collect_shard_stats() {
  std::vector<ShardConfig> up_configs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Shard& shard : shards_) {
      if (shard.up) {
        up_configs.push_back(shard.config);
      }
    }
  }

  std::size_t reporting = 0;
  util::JsonValue merged = util::JsonValue::object();
  for (const ShardConfig& config : up_configs) {
    ResilientClientOptions client_options;
    client_options.host = config.host;
    client_options.port = config.port;
    client_options.connect_timeout_ms = options_.connect_timeout_ms;
    client_options.receive_timeout_ms = options_.receive_timeout_ms;
    client_options.max_attempts = 1;  // a stats miss is not worth a retry
    client_options.probe_on_connect = false;
    ResilientClient client(client_options);
    Client::Response response;
    try {
      response = client.transact("{\"type\":\"stats\",\"id\":\"__fleet__\"}");
    } catch (const std::exception&) {
      continue;  // skipped, not marked down: stats must not shoot the fleet
    }
    if (!response.complete || response.lines.size() != 1) {
      continue;
    }
    util::JsonValue answer;
    try {
      answer = util::JsonValue::parse(response.lines.front());
    } catch (const util::JsonError&) {
      continue;
    }
    if (!answer.is_object()) {
      continue;
    }
    ++reporting;
    // Every block except the envelope (type/request) is counters —
    // service, cache and (for overload-controlled daemons) transport.
    for (const auto& [key, value] : answer.as_object()) {
      if (key == "type" || key == "request") {
        continue;
      }
      if (const util::JsonValue* existing = merged.find(key)) {
        util::JsonValue total = *existing;
        sum_json_counters(total, value);
        merged.set(key, std::move(total));
      } else {
        merged.set(key, value);
      }
    }
  }

  util::JsonValue aggregate = util::JsonValue::object();
  aggregate.set("reporting", reporting);
  for (const auto& [key, value] : merged.as_object()) {
    aggregate.set(key, value);
  }
  return aggregate;
}

// ========================================================= RouterSession ==

RouterSession::RouterSession(
    ShardFleet& fleet, LineFn emit,
    std::shared_ptr<const std::atomic<bool>> cancelled)
    : fleet_(fleet), emit_(std::move(emit)), cancelled_(std::move(cancelled)) {}

void RouterSession::emit(std::string line, bool end_of_response) {
  if (!cancelled()) {
    emit_(std::move(line), end_of_response);
  }
}

// The parse/dispatch front matter deliberately mirrors
// service::JsonlSession line by line: the byte-identity gate runs the
// same request file through both, so every shared error path must
// produce the same error_line bytes.
void RouterSession::handle_line(std::string_view line) {
  ++lines_;
  if (!service::is_request_line(line)) {
    return;
  }
  if (cancelled()) {
    return;
  }
  const std::string default_id = "line-" + std::to_string(lines_);

  util::JsonValue json;
  try {
    json = util::JsonValue::parse(line);
  } catch (const util::JsonError& error) {
    errors_ = true;
    emit(service::error_line(default_id, "",
                             std::string("invalid JSON: ") + error.what()),
         true);
    return;
  }

  if (json.is_object()) {
    if (const util::JsonValue* type = json.find("type")) {
      std::string id = default_id;
      if (const util::JsonValue* id_field = json.find("id")) {
        if (!id_field->is_string()) {
          errors_ = true;
          emit(service::error_line(default_id, "id", "expected a string"),
               true);
          return;
        }
        id = id_field->as_string();
      }
      const bool is_stats = type->is_string() && type->as_string() == "stats";
      const bool is_ping = type->is_string() && type->as_string() == "ping";
      if (!is_stats && !is_ping) {
        errors_ = true;
        emit(service::error_line(
                 id, "type",
                 type->is_string()
                     ? "unknown request type '" + type->as_string() + "'"
                     : std::string("expected a string")),
             true);
        return;
      }
      for (const auto& [key, value] : json.as_object()) {
        if (key != "type" && key != "id") {
          errors_ = true;
          emit(service::error_line(id, key, "unknown field '" + key + "'"),
               true);
          return;
        }
      }
      if (is_ping) {
        emit(service::pong_line(id), true);
      } else {
        // The router's stats surface is the FLEET, not a service/cache
        // block: per-shard health and the failover counters, plus the
        // fleet-wide sum of every Up shard's own counters and — when the
        // router runs under NetServer — its own transport block.
        util::JsonValue stats = util::JsonValue::object();
        stats.set("type", "stats");
        stats.set("request", id);
        stats.set("fleet", fleet_.stats_json());
        stats.set("aggregate", fleet_.collect_shard_stats());
        if (transport_stats_) {
          stats.set("transport", transport_stats_());
        }
        emit(stats.dump(), true);
      }
      return;
    }
  }

  service::ScenarioRequest request;
  try {
    request = service::ScenarioRequest::from_json(json);
  } catch (const service::RequestError& error) {
    errors_ = true;
    emit(service::error_line(default_id, error.field, error.what()), true);
    return;
  }
  if (request.id.empty()) {
    request.id = default_id;
  }

  try {
    serve_scenario(request);
  } catch (const std::exception& error) {
    errors_ = true;
    emit(service::error_line(request.id, "",
                             std::string("internal error: ") + error.what()),
         true);
  }
}

void RouterSession::serve_scenario(const service::ScenarioRequest& request) {
  const core::ScenarioGrid& grid = request.grid;
  // The shards run default sweep options with the request's
  // numeric_optimum applied (SweepService::signature_for does the same),
  // so signatures and chain keys computed here match theirs.
  core::SweepOptions sweep;
  sweep.numeric_optimum = request.numeric_optimum;

  std::vector<core::ScenarioPoint> points = core::resolve_points(grid);
  const std::vector<core::PatternKind> kinds = grid.resolved_kinds();
  // Simulate requests shard exactly like analytic ones — by grid chains
  // — but identify and merge as a SimTable: per-cell RNG streams are
  // content-addressed (sim_cell_seed), so a shard computing one slice
  // emits the same cell bytes a whole-grid compute would.
  const core::GridSignature signature =
      request.simulate ? service::sim_signature(points, kinds, request.sim)
                       : core::grid_signature(points, kinds, sweep);
  const std::vector<core::GridChain> chains = core::grid_chains(grid, sweep);

  const std::size_t nodes_n = std::max<std::size_t>(1, grid.node_counts.size());
  const std::size_t rates_n =
      std::max<std::size_t>(1, grid.rate_factors.size());
  const std::size_t costs_n =
      std::max<std::size_t>(1, grid.cost_overrides.size());
  const std::size_t chain_len = nodes_n * rates_n;

  // The merged result is assembled into a full parent table: replayed
  // cells after a failover simply overwrite identical content, so
  // at-least-once dispatch can never duplicate (or drop) a response
  // line. Emission happens once, at the end, in table order — the same
  // deterministic order a warm cache-hit replay streams.
  core::SweepTable table;
  table.points = std::move(points);
  table.kinds = kinds;
  if (!request.simulate) {
    table.cells.assign(table.points.size() * kinds.size(), core::SweepCell{});
  }
  table.index_kinds();

  // The simulate counterpart: the SweepTable above stays an empty
  // skeleton (its kind_slot index is still the family lookup) and the
  // merge target is a SimTable spanning the two extra sim axes.
  const std::vector<double>& shape_axis = request.sim.weibull_shape;
  const std::vector<double>& ops_axis = request.sim.faulty_ops;
  service::SimTable sim_table;
  if (request.simulate) {
    sim_table.points = table.points;
    sim_table.kinds = kinds;
    sim_table.params = request.sim;
    sim_table.cells.assign(sim_table.cell_count(), service::SimCell{});
  }
  const std::size_t cells_per_point =
      request.simulate ? shape_axis.size() * ops_axis.size() : 1;
  std::vector<unsigned char> filled(
      request.simulate ? sim_table.cells.size() : table.cells.size(), 0);

  // Work units: chains grouped by (owning shard, platform, cost
  // override) — one sub-request per unit, so a shard parallelizes the
  // unit's families across its own pool while the router parallelizes
  // across shards.
  struct Unit {
    std::size_t platform_index = 0;
    std::size_t cost_index = 0;
    std::vector<std::size_t> chain_indices;  ///< into `chains`
  };

  std::mutex merge_mutex;
  bool any_error = false;
  std::string error_field;
  std::string error_message;
  bool all_cache_hit = true;
  bool all_joined = true;
  /// Per-shard "stats" blocks harvested from sub-response done lines
  /// (only when the parent asked for stats). A shard's block is a
  /// service-GLOBAL snapshot, so the latest one seen wins — summing
  /// across units or replay rounds would double-count.
  std::unordered_map<std::string, util::JsonValue> shard_stats;
  bool round_overload = false;       ///< some unit was shed this round
  std::int64_t overload_hint_ms = 0; ///< largest retry_after_ms seen

  std::vector<std::size_t> pending(chains.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    pending[i] = i;
  }

  const RouterOptions& options = fleet_.options();
  // Every non-overload round either finishes or removes at least one
  // shard from the ring, so shards + 2 such rounds bounds the loop even
  // with rejoins racing; overload rounds (busy shard, ring unchanged)
  // have their own budget on top.
  const int max_rounds = static_cast<int>(options.shards.size()) + 2;
  const int max_overload_rounds = std::max(0, options.overload_rounds);
  int round = 0;
  int overload_rounds_used = 0;

  while (!pending.empty() && !any_error) {
    if (cancelled()) {
      return;  // client is gone: stop dispatching on its behalf
    }
    ++round;
    if (round > 1) {
      fleet_.note_replays(pending.size());
    }
    round_overload = false;

    // Route every pending chain through the current ring. An exhausted
    // round budget answers like an empty ring: a located error, never a
    // hang (a shard flapping up and down forever is indistinguishable
    // from one that is down).
    std::unordered_map<std::string, std::vector<std::size_t>> by_shard;
    for (const std::size_t chain_index : pending) {
      const std::optional<std::string> owner =
          round - overload_rounds_used > max_rounds
              ? std::optional<std::string>()
              : fleet_.route(chains[chain_index].key.value);
      if (!owner) {
        errors_ = true;
        emit(service::error_line(
                 request.id, "shards",
                 "no shard available: " +
                     std::to_string(options.shards.size()) +
                     " configured shard(s), " +
                     std::to_string(fleet_.up_count()) + " up"),
             true);
        return;
      }
      by_shard[*owner].push_back(chain_index);
    }
    pending.clear();

    // Deterministic shard order (configuration order) for the dispatch
    // round; within a shard, units in first-seen chain order.
    struct ShardWork {
      std::string shard;
      std::vector<Unit> units;
    };
    std::vector<ShardWork> work;
    for (const std::string& shard_id : fleet_.shard_ids()) {
      const auto it = by_shard.find(shard_id);
      if (it == by_shard.end()) {
        continue;
      }
      ShardWork shard_work;
      shard_work.shard = shard_id;
      for (const std::size_t chain_index : it->second) {
        const core::GridChain& chain = chains[chain_index];
        Unit* unit = nullptr;
        for (Unit& candidate : shard_work.units) {
          if (candidate.platform_index == chain.platform_index &&
              candidate.cost_index == chain.cost_index) {
            unit = &candidate;
            break;
          }
        }
        if (unit == nullptr) {
          shard_work.units.push_back(
              Unit{chain.platform_index, chain.cost_index, {}});
          unit = &shard_work.units.back();
        }
        unit->chain_indices.push_back(chain_index);
      }
      work.push_back(std::move(shard_work));
    }

    const auto run_shard = [&](const ShardWork& shard_work) {
      const std::optional<ShardConfig> config =
          fleet_.config(shard_work.shard);
      bool shard_dead = !config.has_value();
      std::vector<std::size_t> leftover;

      ResilientClientOptions client_options;
      if (config) {
        client_options.host = config->host;
        client_options.port = config->port;
      }
      client_options.connect_timeout_ms = options.connect_timeout_ms;
      client_options.receive_timeout_ms = options.receive_timeout_ms;
      client_options.max_attempts = std::max(1, options.attempts_per_shard);
      client_options.backoff_initial_ms = options.backoff_initial_ms;
      client_options.backoff_max_ms = options.backoff_max_ms;
      client_options.jitter_seed = options.jitter_seed;
      // A busy shard's retry_after_ms is honored, but capped low: the
      // router holds whole rounds of work while one client waits.
      client_options.retry_after_cap_ms =
          std::max(1, options.overload_backoff_cap_ms);
      ResilientClient client(client_options);

      for (const Unit& unit : shard_work.units) {
        if (shard_dead) {
          leftover.insert(leftover.end(), unit.chain_indices.begin(),
                          unit.chain_indices.end());
          continue;
        }

        // The unit's sub-grid: the parent axes restricted to one
        // platform and one cost override, families = the unit's chains.
        service::ScenarioRequest sub;
        sub.grid.platforms = {grid.platforms[unit.platform_index]};
        sub.grid.node_counts = grid.node_counts;
        sub.grid.rate_factors = grid.rate_factors;
        if (!grid.cost_overrides.empty()) {
          sub.grid.cost_overrides = {grid.cost_overrides[unit.cost_index]};
        }
        for (const std::size_t chain_index : unit.chain_indices) {
          sub.grid.kinds.push_back(chains[chain_index].kind);
        }
        sub.numeric_optimum = request.numeric_optimum;
        sub.reuse_seeds = request.reuse_seeds;
        // Per-shard stats blocks ride along when the parent asked for
        // them; the merged done line carries them as a "shards" array.
        sub.include_stats = request.include_stats;
        sub.deadline_ms = request.deadline_ms;
        // Simulate mode travels verbatim: every sim field (budgets AND
        // axes) is result-affecting and enters the sub-signature.
        sub.simulate = request.simulate;
        sub.sim = request.sim;
        // Explicit id: resilient retries land on fresh connections where
        // default line numbering restarts. The id never reaches the
        // merged output (cells re-emit under the parent id).
        sub.id = request.id + "#" +
                 chains[unit.chain_indices.front()].key.hex();
        const std::string sub_line = sub.to_json().dump();
        // What the shard must answer with — a mismatch means the shard
        // runs different result-affecting options than the router
        // assumes, and wrong bytes must fail loudly, not merge quietly.
        const core::GridSignature sub_signature =
            request.simulate
                ? service::sim_signature(core::resolve_points(sub.grid),
                                         sub.grid.resolved_kinds(),
                                         request.sim)
                : core::grid_signature(core::resolve_points(sub.grid),
                                       sub.grid.resolved_kinds(), sweep);

        Client::Response response;
        try {
          response = client.transact(sub_line);
        } catch (const std::exception&) {
          fleet_.note_failure(shard_work.shard);
          shard_dead = true;
          leftover.insert(leftover.end(), unit.chain_indices.begin(),
                          unit.chain_indices.end());
          continue;
        }

        // Backpressure, not death: an admission-shed answer means the
        // shard is healthy but full. It keeps its ring positions (no
        // failover — the survivors are probably just as loaded) and the
        // unit's chains go back to pending for a later overload round.
        std::int64_t shed_hint_ms = 0;
        if (is_overloaded_response(response, &shed_hint_ms)) {
          fleet_.note_shed(shard_work.shard);
          const std::lock_guard<std::mutex> lock(merge_mutex);
          round_overload = true;
          overload_hint_ms = std::max(overload_hint_ms, shed_hint_ms);
          pending.insert(pending.end(), unit.chain_indices.begin(),
                         unit.chain_indices.end());
          continue;
        }
        fleet_.note_request(shard_work.shard);

        // Parse the sub-response: cells to remap, one terminal line.
        bool done_seen = false;
        bool malformed = false;
        bool unit_error = false;
        std::string unit_error_field;
        std::string unit_error_message;
        bool unit_cache_hit = false;
        bool unit_joined = false;
        bool unit_has_stats = false;
        util::JsonValue unit_stats;
        std::vector<core::SweepCell> cells;
        std::vector<service::SimCell> sim_cells;
        try {
          for (const std::string& response_line : response.lines) {
            const util::JsonValue response_json =
                util::JsonValue::parse(response_line);
            const util::JsonValue* type = response_json.find("type");
            const std::string type_name =
                type != nullptr && type->is_string() ? type->as_string() : "";
            if (type_name == "cell") {
              const util::JsonValue* cell_signature =
                  response_json.find("signature");
              if (cell_signature == nullptr ||
                  cell_signature->as_string() != sub_signature.hex()) {
                malformed = true;
                break;
              }
              if (request.simulate) {
                sim_cells.push_back(
                    service::sim_cell_from_json(response_json));
              } else {
                cells.push_back(service::cell_from_json(response_json));
              }
            } else if (type_name == "done") {
              const util::JsonValue* done_signature =
                  response_json.find("signature");
              if (done_signature == nullptr ||
                  done_signature->as_string() != sub_signature.hex()) {
                malformed = true;
                break;
              }
              unit_cache_hit = response_json.find("cache_hit") != nullptr &&
                               response_json.find("cache_hit")->as_bool();
              unit_joined =
                  response_json.find("joined_in_flight") != nullptr &&
                  response_json.find("joined_in_flight")->as_bool();
              if (const util::JsonValue* stats_field =
                      response_json.find("stats")) {
                unit_stats = *stats_field;
                unit_has_stats = true;
              }
              done_seen = true;
            } else if (type_name == "error") {
              const util::JsonValue* field = response_json.find("field");
              const util::JsonValue* message = response_json.find("message");
              unit_error = true;
              unit_error_field =
                  field != nullptr && field->is_string() ? field->as_string()
                                                         : "";
              unit_error_message = message != nullptr && message->is_string()
                                       ? message->as_string()
                                       : "shard error";
            } else {
              malformed = true;
              break;
            }
          }
        } catch (const std::exception&) {
          malformed = true;
        }

        const std::lock_guard<std::mutex> lock(merge_mutex);
        if (unit_has_stats) {
          shard_stats[shard_work.shard] = std::move(unit_stats);
        }
        if (unit_error) {
          // A protocol-level answer (deadline expiry, shard-side engine
          // failure): the parent request fails with the shard's own
          // field/message — exactly the line a single daemon would have
          // answered, re-tagged with the parent id.
          if (!any_error) {
            any_error = true;
            error_field = unit_error_field;
            error_message = unit_error_message;
          }
          continue;
        }
        const std::size_t unit_cells =
            request.simulate ? sim_cells.size() : cells.size();
        if (malformed || !done_seen ||
            unit_cells !=
                chain_len * cells_per_point * unit.chain_indices.size()) {
          if (!any_error) {
            any_error = true;
            error_field = "";
            error_message = "internal error: shard " + shard_work.shard +
                            " returned an invalid response for " + sub.id;
          }
          continue;
        }
        // Remap every sub-cell into the parent table. The sub-grid
        // shares the node/rate axes (and, for simulate, the sim axes),
        // so only the point index changes; sim cells additionally
        // locate their (shape, ops) slot by the echoed axis values.
        if (request.simulate) {
          for (service::SimCell& cell : sim_cells) {
            const std::size_t sub_index = cell.point_index;
            const int slot =
                table.kind_slot[static_cast<std::size_t>(cell.kind)];
            const int shape_slot = axis_index(shape_axis, cell.weibull_shape);
            const int ops_slot = axis_index(ops_axis, cell.faulty_ops);
            if (sub_index >= chain_len || slot < 0 || shape_slot < 0 ||
                ops_slot < 0) {
              if (!any_error) {
                any_error = true;
                error_field = "";
                error_message = "internal error: shard " + shard_work.shard +
                                " returned an out-of-grid cell for " + sub.id;
              }
              break;
            }
            const std::size_t node_index = sub_index / rates_n;
            const std::size_t rate_index = sub_index % rates_n;
            const std::size_t parent_index =
                ((unit.platform_index * nodes_n + node_index) * rates_n +
                 rate_index) *
                    costs_n +
                unit.cost_index;
            cell.point_index = parent_index;
            const std::size_t position = sim_table.cell_index(
                parent_index, static_cast<std::size_t>(slot),
                static_cast<std::size_t>(shape_slot),
                static_cast<std::size_t>(ops_slot));
            sim_table.cells[position] = cell;
            filled[position] = 1;
          }
        } else {
          for (core::SweepCell& cell : cells) {
            const std::size_t sub_index = cell.point_index;
            const std::size_t slot_index = static_cast<std::size_t>(cell.kind);
            const int slot = table.kind_slot[slot_index];
            if (sub_index >= chain_len || slot < 0) {
              if (!any_error) {
                any_error = true;
                error_field = "";
                error_message = "internal error: shard " + shard_work.shard +
                                " returned an out-of-grid cell for " + sub.id;
              }
              break;
            }
            const std::size_t node_index = sub_index / rates_n;
            const std::size_t rate_index = sub_index % rates_n;
            const std::size_t parent_index =
                ((unit.platform_index * nodes_n + node_index) * rates_n +
                 rate_index) *
                    costs_n +
                unit.cost_index;
            cell.point_index = parent_index;
            const std::size_t position =
                parent_index * kinds.size() + static_cast<std::size_t>(slot);
            table.cells[position] = cell;
            filled[position] = 1;
          }
        }
        all_cache_hit = all_cache_hit && unit_cache_hit;
        all_joined = all_joined && unit_joined;
      }

      if (shard_dead) {
        if (fleet_.mark_down(shard_work.shard)) {
          fleet_.note_failover();
        }
        const std::lock_guard<std::mutex> lock(merge_mutex);
        pending.insert(pending.end(), leftover.begin(), leftover.end());
      }
    };

    if (work.size() == 1) {
      run_shard(work.front());  // no thread spawn on the single-shard path
    } else {
      std::vector<std::thread> threads;
      threads.reserve(work.size());
      for (const ShardWork& shard_work : work) {
        threads.emplace_back([&run_shard, &shard_work] {
          run_shard(shard_work);
        });
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
    }

    if (round_overload && !pending.empty() && !any_error) {
      ++overload_rounds_used;
      if (overload_rounds_used > max_overload_rounds) {
        // Budget spent waiting on busy shards: give up RETRIABLY — the
        // parent answer is the same "overloaded" error a single daemon
        // sheds with, so the client's own retry_after backoff takes over.
        errors_ = true;
        emit(service::overloaded_line(
                 request.id, overload_hint_ms > 0 ? overload_hint_ms : 1000),
             true);
        return;
      }
      const std::int64_t wait = std::min<std::int64_t>(
          std::max<std::int64_t>(overload_hint_ms, 1),
          std::max(1, options.overload_backoff_cap_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
  }

  if (cancelled()) {
    return;
  }
  if (any_error) {
    errors_ = true;
    emit(service::error_line(request.id, error_field, error_message), true);
    return;
  }
  for (const unsigned char was_filled : filled) {
    if (was_filled == 0) {
      errors_ = true;
      emit(service::error_line(request.id, "",
                               "internal error: merged response is missing "
                               "cells"),
           true);
      return;
    }
  }

  // The merged stream: every cell in table order (the warm replay
  // order), then the done summary whose reuse flags are the AND over
  // the sub-responses. When the parent asked for stats, the harvested
  // per-shard blocks merge into one {"shards": [...]} stats block in
  // fleet configuration order (shards that served no unit are absent).
  util::JsonValue stats_block;
  if (request.include_stats) {
    util::JsonValue shard_array = util::JsonValue::array();
    for (const std::string& shard_id : fleet_.shard_ids()) {
      const auto it = shard_stats.find(shard_id);
      if (it == shard_stats.end()) {
        continue;
      }
      util::JsonValue entry = util::JsonValue::object();
      entry.set("id", shard_id);
      entry.set("stats", it->second);
      shard_array.push_back(std::move(entry));
    }
    stats_block = util::JsonValue::object();
    stats_block.set("shards", std::move(shard_array));
  }

  if (request.simulate) {
    for (const service::SimCell& cell : sim_table.cells) {
      emit(service::sim_cell_line(request.id, signature, cell), false);
    }
    emit(request.include_stats
             ? service::sim_done_line(request.id, signature, sim_table,
                                      all_cache_hit, stats_block)
             : service::sim_done_line(request.id, signature, sim_table,
                                      all_cache_hit),
         true);
    return;
  }
  for (const core::SweepCell& cell : table.cells) {
    emit(service::cell_line(request.id, signature, cell), false);
  }
  emit(request.include_stats
           ? service::done_line(request.id, signature, table, all_cache_hit,
                                all_joined, stats_block)
           : service::done_line(request.id, signature, table, all_cache_hit,
                                all_joined, nullptr),
       true);
}

}  // namespace resilience::net
