#include "resilience/net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace resilience::net {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

#if defined(__linux__)

bool transport_supported() noexcept { return true; }

void Fd::reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc == -1 && errno == EINTR);
    fd_ = -1;
  }
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  // Not a dotted quad: resolve (covers "localhost"). IPv4-only keeps the
  // code tiny; the daemon serves loopback/LAN sweeps, not the open web.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::runtime_error("net: cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

}  // namespace

IoStatus read_some(int fd, char* data, std::size_t size,
                   std::size_t* transferred) {
  *transferred = 0;
  for (;;) {
    const ssize_t n = ::read(fd, data, size);
    if (n > 0) {
      *transferred = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) {
      return IoStatus::kEof;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kWouldBlock;
    }
    return IoStatus::kError;
  }
}

IoStatus write_some(int fd, const char* data, std::size_t size,
                    std::size_t* transferred) {
  *transferred = 0;
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-stream must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      *transferred = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kWouldBlock;
    }
    return IoStatus::kError;
  }
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw_errno("socket");
  }
  const int one = 1;
  if (::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) ==
      -1) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = resolve_ipv4(host, port);
  if (::bind(fd.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
      -1) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.fd(), backlog) == -1) {
    throw_errno("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.fd(), reinterpret_cast<sockaddr*>(&bound), &len) ==
        -1) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Fd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      return Fd(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // EAGAIN = queue drained; ECONNABORTED etc. = that one connection
    // evaporated before we accepted it. Either way: nothing to hand out.
    return Fd();
  }
}

Fd connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
  // A bounded connect must run non-blocking (a blocking ::connect cannot
  // be interrupted short of SYN-retry exhaustion); the unbounded path
  // stays blocking but shares the poll + SO_ERROR completion below when
  // EINTR leaves the connect establishing in the kernel.
  const int flags =
      SOCK_STREAM | SOCK_CLOEXEC | (timeout_ms > 0 ? SOCK_NONBLOCK : 0);
  Fd fd(::socket(AF_INET, flags, 0));
  if (!fd.valid()) {
    throw_errno("socket");
  }
  sockaddr_in addr = resolve_ipv4(host, port);
  int rc =
      ::connect(fd.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == -1 && (errno == EINTR || errno == EINPROGRESS)) {
    // POSIX: an EINTR'd (or non-blocking in-progress) connect keeps
    // establishing in the kernel, and calling connect() again yields
    // EALREADY/EISCONN, not a restart — wait for writability and read
    // the real outcome from SO_ERROR.
    pollfd ready{};
    ready.fd = fd.fd();
    ready.events = POLLOUT;
    do {
      rc = ::poll(&ready, 1, timeout_ms > 0 ? timeout_ms : -1);
    } while (rc == -1 && errno == EINTR);
    if (rc == -1) {
      throw_errno("poll(connect " + host + ":" + std::to_string(port) + ")");
    }
    if (rc == 0) {
      throw std::runtime_error("net: connect " + host + ":" +
                               std::to_string(port) + ": timed out after " +
                               std::to_string(timeout_ms) + " ms");
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd.fd(), SOL_SOCKET, SO_ERROR, &error, &len) == -1) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (error != 0) {
      errno = error;
      rc = -1;
    } else {
      rc = 0;
    }
  }
  if (rc == -1) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  if (timeout_ms > 0) {
    set_blocking(fd.fd());  // callers expect a blocking client socket
  }
  set_tcp_nodelay(fd.fd());
  return fd;
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags != -1) {
    (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags != -1) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void set_linger_reset(int fd) {
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  (void)::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_send_buffer(int fd, int bytes) {
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

void shutdown_send_half(int fd) { (void)::shutdown(fd, SHUT_WR); }

void set_receive_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000L;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

#else  // !__linux__ — keep the library linkable; the daemon is Linux-only.

bool transport_supported() noexcept { return false; }

void Fd::reset() { fd_ = -1; }

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error(
      "resilience/net: the socket transport requires Linux (epoll)");
}
}  // namespace

IoStatus read_some(int, char*, std::size_t, std::size_t*) { unsupported(); }
IoStatus write_some(int, const char*, std::size_t, std::size_t*) {
  unsupported();
}
Fd listen_tcp(const std::string&, std::uint16_t, int, std::uint16_t*) {
  unsupported();
}
Fd accept_connection(int) { unsupported(); }
Fd connect_tcp(const std::string&, std::uint16_t, int) { unsupported(); }
void set_blocking(int) {}
void set_nonblocking(int) {}
void set_linger_reset(int) {}
void set_tcp_nodelay(int) {}
void set_send_buffer(int, int) {}
void shutdown_send_half(int) {}
void set_receive_timeout(int, int) {}

#endif

}  // namespace resilience::net
