#include "resilience/net/hash_ring.hpp"

#include <algorithm>

namespace resilience::net {

namespace {

/// splitmix64 finalizer: the bit mixer under every ring position and
/// key placement (same construction as net::FaultSchedule's streams).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a 64 over the shard id, then mixed: string identity -> stream
/// seed.
std::uint64_t shard_seed(const std::string& shard_id) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char byte : shard_id) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return mix64(hash);
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& shard_id) {
  if (contains(shard_id)) {
    return;
  }
  const std::uint64_t seed = shard_seed(shard_id);
  points_.reserve(points_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    points_.push_back(Point{mix64(seed + v), shard_id});
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
  ++shard_count_;
}

void HashRing::remove(const std::string& shard_id) {
  const std::size_t before = points_.size();
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const Point& point) {
                                 return point.shard == shard_id;
                               }),
                points_.end());
  if (points_.size() != before) {
    --shard_count_;
  }
}

bool HashRing::contains(const std::string& shard_id) const {
  return std::any_of(points_.begin(), points_.end(), [&](const Point& point) {
    return point.shard == shard_id;
  });
}

std::vector<std::string> HashRing::shards() const {
  std::vector<std::string> ids;
  ids.reserve(shard_count_);
  for (const Point& point : points_) {
    ids.push_back(point.shard);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::optional<std::string> HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) {
    return std::nullopt;
  }
  const std::uint64_t position = mix64(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const Point& point, std::uint64_t want) {
        return point.position < want;
      });
  return it == points_.end() ? points_.front().shard : it->shard;
}

}  // namespace resilience::net
