#include "resilience/net/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace resilience::net {

ResilientClient::ResilientClient(ResilientClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
}

bool ResilientClient::probe() {
  ++stats_.pings;
  try {
    // Explicit id: default ids are per-connection line numbers, and the
    // probe must not shift them for the caller's own requests... it
    // still counts as an input line, so callers matching by id should
    // use explicit ids anyway (see header).
    const Client::Response response =
        client_.transact("{\"type\":\"ping\",\"id\":\"__probe__\"}");
    return response.complete && response.lines.size() == 1 &&
           response.lines.front().starts_with("{\"type\":\"pong\"");
  } catch (const std::exception&) {
    return false;
  }
}

void ResilientClient::ensure_connected() {
  if (client_.connected()) {
    return;
  }
  client_.connect(options_.host, options_.port, options_.connect_timeout_ms);
  if (options_.receive_timeout_ms > 0) {
    client_.set_receive_timeout(options_.receive_timeout_ms);
  }
  if (options_.probe_on_connect && !probe()) {
    client_.close();
    throw std::runtime_error(
        "ResilientClient: endpoint accepted but failed the ping probe");
  }
  ++stats_.connects;
  if (ever_connected_) {
    ++stats_.reconnects;
  }
  ever_connected_ = true;
}

void ResilientClient::backoff(int attempt) {
  // attempt is 1-based here (the first RETRY passes 1). Exponential base
  // capped at backoff_max_ms; the top half is jitter drawn from the
  // deterministic stream, so two clients with different seeds desync.
  const int exponent = std::min(attempt - 1, 20);
  const std::int64_t base =
      std::min<std::int64_t>(options_.backoff_max_ms,
                             static_cast<std::int64_t>(options_.backoff_initial_ms)
                                 << exponent);
  if (base <= 0) {
    return;
  }
  const int wait =
      static_cast<int>(base / 2) + jitter_.pick_ms(static_cast<int>(base / 2));
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
}

bool ResilientClient::ping() {
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      backoff(attempt);
    }
    try {
      if (!client_.connected()) {
        ensure_connected();
        if (options_.probe_on_connect) {
          return true;  // ensure_connected() already got a pong
        }
      }
      if (probe()) {
        return true;
      }
      client_.close();
    } catch (const std::exception&) {
      client_.close();
    }
  }
  return false;
}

Client::Response ResilientClient::transact(std::string_view line) {
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      backoff(attempt);
    }
    try {
      ensure_connected();
      Client::Response response = client_.transact(line);
      if (response.complete) {
        return response;
      }
      // Server closed mid-response: the partial lines are worthless (the
      // retry re-delivers every cell — dedupe makes that a replay, not a
      // recompute), so drop them and go again.
      last_error = "response truncated by server close";
    } catch (const std::exception& error) {
      last_error = error.what();
    }
    ++stats_.failures;
    client_.close();
  }
  throw std::runtime_error("ResilientClient: request failed after " +
                           std::to_string(options_.max_attempts) +
                           " attempts; last error: " + last_error);
}

}  // namespace resilience::net
