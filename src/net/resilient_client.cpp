#include "resilience/net/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "resilience/util/json.hpp"

namespace resilience::net {

bool is_overloaded_response(const Client::Response& response,
                            std::int64_t* retry_after_ms) {
  if (retry_after_ms != nullptr) {
    *retry_after_ms = 0;
  }
  if (!response.complete || response.lines.empty()) {
    return false;
  }
  // Cheap reject before parsing: almost every response is not a shed.
  const std::string& last = response.lines.back();
  if (last.find("\"code\":\"overloaded\"") == std::string::npos) {
    return false;
  }
  try {
    const util::JsonValue json = util::JsonValue::parse(last);
    const util::JsonValue* code = json.find("code");
    if (code == nullptr || !code->is_string() ||
        code->as_string() != "overloaded") {
      return false;
    }
    if (retry_after_ms != nullptr) {
      if (const util::JsonValue* retry = json.find("retry_after_ms")) {
        if (retry->is_number()) {
          *retry_after_ms =
              static_cast<std::int64_t>(std::llround(retry->as_double()));
        }
      }
    }
    return true;
  } catch (const util::JsonError&) {
    return false;  // substring matched inside some payload string
  }
}

ResilientClient::ResilientClient(ResilientClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
}

bool ResilientClient::probe() {
  ++stats_.pings;
  try {
    // Explicit id: default ids are per-connection line numbers, and the
    // probe must not shift them for the caller's own requests... it
    // still counts as an input line, so callers matching by id should
    // use explicit ids anyway (see header).
    const Client::Response response =
        client_.transact("{\"type\":\"ping\",\"id\":\"__probe__\"}");
    return response.complete && response.lines.size() == 1 &&
           response.lines.front().starts_with("{\"type\":\"pong\"");
  } catch (const std::exception&) {
    return false;
  }
}

void ResilientClient::ensure_connected() {
  if (client_.connected()) {
    return;
  }
  client_.connect(options_.host, options_.port, options_.connect_timeout_ms);
  if (options_.receive_timeout_ms > 0) {
    client_.set_receive_timeout(options_.receive_timeout_ms);
  }
  if (options_.probe_on_connect && !probe()) {
    client_.close();
    throw std::runtime_error(
        "ResilientClient: endpoint accepted but failed the ping probe");
  }
  ++stats_.connects;
  if (ever_connected_) {
    ++stats_.reconnects;
  }
  ever_connected_ = true;
}

void ResilientClient::backoff(int attempt) {
  // attempt is 1-based here (the first RETRY passes 1). Exponential base
  // capped at backoff_max_ms; the top half is jitter drawn from the
  // deterministic stream, so two clients with different seeds desync.
  const int exponent = std::min(attempt - 1, 20);
  const std::int64_t base =
      std::min<std::int64_t>(options_.backoff_max_ms,
                             static_cast<std::int64_t>(options_.backoff_initial_ms)
                                 << exponent);
  if (base <= 0) {
    return;
  }
  const int wait =
      static_cast<int>(base / 2) + jitter_.pick_ms(static_cast<int>(base / 2));
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
}

bool ResilientClient::ping() {
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      backoff(attempt);
    }
    try {
      if (!client_.connected()) {
        ensure_connected();
        if (options_.probe_on_connect) {
          return true;  // ensure_connected() already got a pong
        }
      }
      if (probe()) {
        return true;
      }
      client_.close();
    } catch (const std::exception&) {
      client_.close();
    }
  }
  return false;
}

Client::Response ResilientClient::transact(std::string_view line) {
  std::string last_error = "no attempt made";
  bool slept_on_hint = false;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      if (!slept_on_hint) {
        backoff(attempt);
      }
    }
    slept_on_hint = false;
    try {
      ensure_connected();
      Client::Response response = client_.transact(line);
      if (response.complete) {
        std::int64_t hint = 0;
        if (is_overloaded_response(response, &hint)) {
          // A shed is a healthy, complete answer — the connection stays
          // open and the attempt is not a failure. Wait the server-stated
          // drain estimate (capped) and re-send; once the attempt budget
          // is spent, hand the overloaded response to the caller so it
          // can tell backpressure from a dead endpoint (the router does).
          ++stats_.overloaded;
          if (attempt + 1 >= options_.max_attempts) {
            return response;
          }
          if (options_.honor_retry_after && hint > 0) {
            const std::int64_t wait = std::min<std::int64_t>(
                hint, std::max(options_.retry_after_cap_ms, 1));
            std::this_thread::sleep_for(std::chrono::milliseconds(wait));
            slept_on_hint = true;
          }
          continue;
        }
        return response;
      }
      // Server closed mid-response: the partial lines are worthless (the
      // retry re-delivers every cell — dedupe makes that a replay, not a
      // recompute), so drop them and go again.
      last_error = "response truncated by server close";
    } catch (const std::exception& error) {
      last_error = error.what();
    }
    ++stats_.failures;
    client_.close();
  }
  throw std::runtime_error("ResilientClient: request failed after " +
                           std::to_string(options_.max_attempts) +
                           " attempts; last error: " + last_error);
}

}  // namespace resilience::net
