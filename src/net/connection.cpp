#include "resilience/net/connection.hpp"

#include <utility>

namespace resilience::net {

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  fd_ = listen_tcp(host, port, backlog, &port_);
}

Connection::Connection(EventLoop& loop, Fd fd, std::uint64_t id,
                       std::size_t write_buffer_limit,
                       std::size_t max_line_bytes)
    : loop_(loop),
      fd_(std::move(fd)),
      id_(id),
      write_buffer_limit_(write_buffer_limit),
      framer_(max_line_bytes) {}

Connection::ReadResult Connection::pump_reads(
    const LineFramer::LineFn& on_line) {
  char buffer[16384];
  for (;;) {
    if (reading_paused_) {
      // Leave the remaining bytes in the kernel buffer: that is the
      // backpressure signal TCP propagates to the sender.
      return ReadResult::kOk;
    }
    std::size_t n = 0;
    switch (read_some(fd_.fd(), buffer, sizeof(buffer), &n)) {
      case IoStatus::kOk:
        if (!framer_.feed(std::string_view(buffer, n), on_line)) {
          return ReadResult::kFramingError;
        }
        // Delivering lines may have grown the outbound queue past the
        // pause watermark; re-check before reading more.
        update_interest();
        break;
      case IoStatus::kWouldBlock:
        return ReadResult::kOk;
      case IoStatus::kEof:
        if (!framer_.finish(on_line)) {
          return ReadResult::kFramingError;
        }
        return ReadResult::kClosed;
      case IoStatus::kError:
        return ReadResult::kError;
    }
  }
}

bool Connection::enqueue(std::string_view line) {
  if (closed() || overflowed()) {
    return false;
  }
  std::size_t total;
  {
    const std::lock_guard<std::mutex> lock(write_mutex_);
    inbox_.append(line);
    inbox_.push_back('\n');
    total = outbound_bytes_.fetch_add(line.size() + 1,
                                      std::memory_order_acq_rel) +
            line.size() + 1;
  }
  if (write_buffer_limit_ != 0 && total > write_buffer_limit_) {
    // Latch; the queued bytes are never sent — the loop thread drops the
    // connection when it sees the latch, and this producer's session
    // treats the false return as cancellation.
    overflowed_.store(true, std::memory_order_release);
  }
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel) && wake_fn_) {
    wake_fn_();
  }
  return !overflowed();
}

bool Connection::flush() {
  wake_pending_.store(false, std::memory_order_release);
  if (!fd_.valid()) {
    return false;
  }
  for (;;) {
    if (writing_offset_ == writing_.size()) {
      writing_.clear();
      writing_offset_ = 0;
      {
        const std::lock_guard<std::mutex> lock(write_mutex_);
        writing_.swap(inbox_);
      }
      if (writing_.empty()) {
        break;
      }
    }
    std::size_t n = 0;
    const IoStatus status =
        write_some(fd_.fd(), writing_.data() + writing_offset_,
                   writing_.size() - writing_offset_, &n);
    if (status == IoStatus::kOk) {
      writing_offset_ += n;
      outbound_bytes_.fetch_sub(n, std::memory_order_acq_rel);
      continue;
    }
    if (status == IoStatus::kWouldBlock) {
      want_write_ = true;
      update_interest();
      return true;
    }
    return false;
  }
  want_write_ = false;
  update_interest();
  return true;
}

void Connection::set_read_hold(bool hold) {
  read_hold_ = hold;
  update_interest();
}

void Connection::update_interest() {
  if (!fd_.valid()) {
    return;
  }
  const bool pause =
      read_hold_ || (write_buffer_limit_ != 0 &&
                     outbound_bytes() > write_buffer_limit_ / 2);
  std::uint32_t mask = pause ? 0 : IoEvents::kRead;
  if (want_write_) {
    mask |= IoEvents::kWrite;
  }
  reading_paused_ = pause;
  if (mask != current_interest_) {
    current_interest_ = mask;
    loop_.modify_fd(fd_.fd(), mask);
  }
}

void Connection::close() {
  closed_.store(true, std::memory_order_release);
  if (fd_.valid()) {
    loop_.remove_fd(fd_.fd());
    fd_.reset();
  }
}

}  // namespace resilience::net
