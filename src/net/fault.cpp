#include "resilience/net/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <poll.h>
#endif

namespace resilience::net {

// ---------------------------------------------------------------------------
// FaultSchedule / FaultInjector — pure deterministic logic, every platform.

std::uint64_t FaultSchedule::next() noexcept {
  // splitmix64: tiny, statistically fine for fault scheduling, and —
  // unlike std::mt19937 — trivially stable across standard libraries, so
  // a seed reproduces the same chaos run on every toolchain.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t FaultSchedule::chunk_len(std::size_t available,
                                     std::size_t max_chunk) noexcept {
  const std::size_t cap =
      max_chunk == 0 ? available : (available < max_chunk ? available
                                                          : max_chunk);
  if (cap <= 1) {
    return 1;
  }
  return 1 + static_cast<std::size_t>(next() % cap);
}

bool FaultSchedule::one_in(std::uint64_t n) noexcept {
  if (n == 0) {
    return false;
  }
  return next() % n == 0;
}

int FaultSchedule::pick_ms(int max_ms) noexcept {
  if (max_ms <= 0) {
    return 0;
  }
  return static_cast<int>(next() %
                          (static_cast<std::uint64_t>(max_ms) + 1));
}

std::uint64_t FaultSchedule::mix(std::uint64_t a, std::uint64_t b) noexcept {
  FaultSchedule combined(a ^ (b * 0x9e3779b97f4a7c15ULL));
  return combined.next();
}

bool FaultInjector::take_budget() noexcept {
  if (shared_budget_ != nullptr) {
    // Claim one unit unless the pool is dry; CAS loop so concurrent
    // connections never overspend.
    std::size_t budget = shared_budget_->load(std::memory_order_relaxed);
    while (budget > 0) {
      if (shared_budget_->compare_exchange_weak(budget, budget - 1,
                                                std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  if (local_budget_ == 0) {
    return false;
  }
  --local_budget_;
  return true;
}

// ---------------------------------------------------------------------------
// ChaosProxy — Linux-only like the rest of the transport.

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {
  kill_budget_.store(options_.profile.kill_budget, std::memory_order_relaxed);
}

ChaosProxy::~ChaosProxy() { stop(); }

ChaosProxy::Stats ChaosProxy::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.kills = kills_.load(std::memory_order_relaxed);
  stats.stalls = stalls_.load(std::memory_order_relaxed);
  stats.chunks = chunks_.load(std::memory_order_relaxed);
  stats.forwarded_bytes = forwarded_bytes_.load(std::memory_order_relaxed);
  stats.kill_budget_left = kill_budget_.load(std::memory_order_relaxed);
  return stats;
}

#if defined(__linux__)

void ChaosProxy::start() {
  if (started_) {
    throw std::logic_error("ChaosProxy: already started");
  }
  listener_ =
      listen_tcp(options_.listen_host, options_.listen_port, /*backlog=*/64,
                 &port_);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  if (!started_) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.reset();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    thread.join();  // each observes stopping_ within one poll tick
  }
  started_ = false;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd waiting{};
    waiting.fd = listener_.fd();
    waiting.events = POLLIN;
    const int rc = ::poll(&waiting, 1, /*timeout=*/100);
    if (rc <= 0) {
      continue;  // tick: re-check stopping_ (EINTR folds in here too)
    }
    Fd client = accept_connection(listener_.fd());
    if (!client.valid()) {
      continue;
    }
    const std::uint64_t index =
        connections_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, conn = std::move(client), index]() mutable {
          serve_connection(std::move(conn), index);
        });
  }
}

void ChaosProxy::serve_connection(Fd client, std::uint64_t connection_index) {
  Fd upstream;
  try {
    upstream = connect_tcp(options_.upstream_host, options_.upstream_port,
                           options_.upstream_connect_timeout_ms);
  } catch (const std::exception&) {
    return;  // client sees a plain close; a resilient client retries
  }
  // Both ends non-blocking (the accepted fd already is): the pump below
  // speculatively reads/writes each tick and relies on kWouldBlock, so a
  // quiet peer must never wedge the thread in a blocking read.
  set_nonblocking(upstream.fd());

  // One injector per direction: both decision streams are functions of
  // (proxy seed, connection index, direction) alone, so a chaos run is
  // replayable from its seed no matter how the peers interleave.
  const std::uint64_t conn_seed =
      FaultSchedule::mix(options_.seed, connection_index);

  struct Flow {
    int from;
    int to;
    FaultInjector injector;
    std::string pending;      ///< read but not yet forwarded
    bool input_open = true;   ///< `from` has not EOF'd
    bool half_closed = false; ///< EOF relayed to `to` after draining
  };
  Flow flows[2] = {
      {client.fd(), upstream.fd(),
       FaultInjector(options_.profile, FaultSchedule::mix(conn_seed, 1),
                     &kill_budget_),
       {}, true, false},
      {upstream.fd(), client.fd(),
       FaultInjector(options_.profile, FaultSchedule::mix(conn_seed, 2),
                     &kill_budget_),
       {}, true, false},
  };
  // Backpressure cap on buffered bytes per direction: past it we stop
  // reading until the (possibly stalling) forward side drains.
  constexpr std::size_t kMaxPending = 1 << 20;

  // Drains as much of the pending buffer as the kernel accepts, one
  // fault-scheduled chunk at a time; false = the connection dies now.
  const auto forward_step = [&](Flow& flow) -> bool {
    while (!flow.pending.empty() &&
           !stopping_.load(std::memory_order_acquire)) {
      const int stall = flow.injector.stall_ms();
      if (stall > 0) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
      if (flow.injector.should_kill()) {
        kills_.fetch_add(1, std::memory_order_relaxed);
        if (options_.profile.reset_on_kill) {
          // Abort rather than close: the client must see ECONNRESET (a
          // crashed server), not a tidy EOF.
          set_linger_reset(client.fd());
        }
        return false;
      }
      const std::size_t len =
          flow.injector.next_chunk_len(flow.pending.size());
      std::size_t n = 0;
      const IoStatus status = write_some(flow.to, flow.pending.data(), len, &n);
      if (status == IoStatus::kError) {
        return false;
      }
      if (status == IoStatus::kWouldBlock) {
        break;  // kernel buffer full; retry on the next tick
      }
      if (n > 0) {
        flow.pending.erase(0, n);
        chunks_.fetch_add(1, std::memory_order_relaxed);
        forwarded_bytes_.fetch_add(n, std::memory_order_relaxed);
      }
    }
    return true;
  };

  const auto read_step = [&](Flow& flow) -> bool {
    char buf[16384];
    std::size_t n = 0;
    switch (read_some(flow.from, buf, sizeof(buf), &n)) {
      case IoStatus::kOk:
        flow.pending.append(buf, n);
        return true;
      case IoStatus::kWouldBlock:
        return true;
      case IoStatus::kEof:
        flow.input_open = false;
        return true;
      case IoStatus::kError:
        return false;
    }
    return false;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    // Poll readability on the two `from` ends; writability is handled
    // optimistically — write_some on a socket with buffer space succeeds
    // immediately, and a kWouldBlock just leaves the bytes pending for
    // the next (short) tick. Chunks are tiny, so that retry is rare.
    pollfd waiting[2]{};
    bool any_interest = false;
    for (int i = 0; i < 2; ++i) {
      Flow& flow = flows[i];
      waiting[i].fd = -1;  // poll ignores negative fds
      if (flow.input_open && flow.pending.size() < kMaxPending) {
        waiting[i].fd = flow.from;
        waiting[i].events = POLLIN;
        any_interest = true;
      }
      if (!flow.pending.empty()) {
        any_interest = true;  // drain via the tick even with reads parked
      }
    }
    if (!any_interest) {
      break;  // both directions EOF'd and drained
    }
    const bool pending_writes =
        !flows[0].pending.empty() || !flows[1].pending.empty();
    (void)::poll(waiting, 2, pending_writes ? 5 : 50);

    bool dead = false;
    for (Flow& flow : flows) {
      if (flow.input_open && !read_step(flow)) {
        dead = true;
        break;
      }
      if (!forward_step(flow)) {
        dead = true;
        break;
      }
      if (!flow.input_open && flow.pending.empty() && !flow.half_closed) {
        shutdown_send_half(flow.to);  // relay the EOF once drained
        flow.half_closed = true;
      }
    }
    if (dead) {
      return;  // fds close on scope exit (RST if armed)
    }
    if (flows[0].half_closed && flows[1].half_closed) {
      return;  // orderly shutdown both ways
    }
  }
}

#else  // !__linux__

void ChaosProxy::start() {
  throw std::runtime_error(
      "resilience/net: the chaos proxy requires Linux (like the transport)");
}
void ChaosProxy::stop() {}
void ChaosProxy::accept_loop() {}
void ChaosProxy::serve_connection(Fd, std::uint64_t) {}

#endif

}  // namespace resilience::net
