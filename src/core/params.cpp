#include "resilience/core/params.hpp"

#include <cmath>
#include <limits>

namespace resilience::core {

namespace {

void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

}  // namespace

void CostParams::validate() const {
  require(disk_checkpoint >= 0.0, "CostParams: disk_checkpoint must be >= 0");
  require(memory_checkpoint >= 0.0, "CostParams: memory_checkpoint must be >= 0");
  require(disk_recovery >= 0.0, "CostParams: disk_recovery must be >= 0");
  require(memory_recovery >= 0.0, "CostParams: memory_recovery must be >= 0");
  require(guaranteed_verification >= 0.0,
          "CostParams: guaranteed_verification must be >= 0");
  require(partial_verification >= 0.0,
          "CostParams: partial_verification must be >= 0");
  require(recall > 0.0 && recall <= 1.0, "CostParams: recall must be in (0, 1]");
}

CostParams CostParams::paper_defaults(double disk_checkpoint_cost,
                                      double memory_checkpoint_cost) {
  CostParams costs;
  costs.disk_checkpoint = disk_checkpoint_cost;
  costs.memory_checkpoint = memory_checkpoint_cost;
  costs.disk_recovery = disk_checkpoint_cost;      // R_D = C_D
  costs.memory_recovery = memory_checkpoint_cost;  // R_M = C_M
  costs.guaranteed_verification = memory_checkpoint_cost;  // V* = C_M
  costs.partial_verification = memory_checkpoint_cost / 100.0;  // V = V*/100
  costs.recall = 0.8;
  costs.validate();
  return costs;
}

void ErrorRates::validate() const {
  require(fail_stop >= 0.0, "ErrorRates: fail_stop rate must be >= 0");
  require(silent >= 0.0, "ErrorRates: silent rate must be >= 0");
}

double ErrorRates::platform_mtbf() const noexcept {
  const double lambda = total();
  if (lambda <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / lambda;
}

ErrorRates ErrorRates::scaled(double fail_stop_factor,
                              double silent_factor) const noexcept {
  return ErrorRates{fail_stop * fail_stop_factor, silent * silent_factor};
}

double error_probability(double lambda, double w) noexcept {
  if (lambda <= 0.0 || w <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-lambda * w);
}

double expected_time_lost(double lambda, double w) noexcept {
  if (w <= 0.0) {
    return 0.0;
  }
  const double x = lambda * w;
  if (x < 1e-8) {
    // Second-order series of 1/lambda - w/(e^x - 1) around x = 0:
    //   w/2 - x*w/12 + O(x^3 w).
    return w * (0.5 - x / 12.0);
  }
  return 1.0 / lambda - w / std::expm1(x);
}

}  // namespace resilience::core
