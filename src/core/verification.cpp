#include "resilience/core/verification.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace resilience::core {

void Detector::validate() const {
  if (cost < 0.0) {
    throw std::invalid_argument("Detector: cost must be >= 0");
  }
  if (!(recall > 0.0) || recall > 1.0) {
    throw std::invalid_argument("Detector: recall must be in (0, 1]");
  }
}

double accuracy_to_cost_ratio(const Detector& detector, double guaranteed_cost,
                              double memory_checkpoint_cost) {
  detector.validate();
  const double reference = guaranteed_cost + memory_checkpoint_cost;
  if (reference <= 0.0) {
    throw std::invalid_argument("accuracy_to_cost_ratio: V* + C_M must be positive");
  }
  const double accuracy = detector.recall / (2.0 - detector.recall);
  if (detector.cost <= 0.0) {
    // A free detector has unbounded ratio; rank it above everything.
    return std::numeric_limits<double>::infinity();
  }
  return accuracy / (detector.cost / reference);
}

double guaranteed_accuracy_to_cost_ratio(double guaranteed_cost,
                                         double memory_checkpoint_cost) {
  if (guaranteed_cost <= 0.0) {
    throw std::invalid_argument(
        "guaranteed_accuracy_to_cost_ratio: V* must be positive");
  }
  return memory_checkpoint_cost / guaranteed_cost + 1.0;
}

Detector select_best_detector(const std::vector<Detector>& candidates,
                              double guaranteed_cost, double memory_checkpoint_cost) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_best_detector: no candidates");
  }
  const Detector* best = nullptr;
  double best_ratio = -1.0;
  for (const auto& candidate : candidates) {
    const double ratio =
        accuracy_to_cost_ratio(candidate, guaranteed_cost, memory_checkpoint_cost);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = &candidate;
    }
  }
  return *best;
}

bool partial_verification_worthwhile(const Detector& detector, double guaranteed_cost,
                                     double memory_checkpoint_cost) {
  return accuracy_to_cost_ratio(detector, guaranteed_cost, memory_checkpoint_cost) >
         guaranteed_accuracy_to_cost_ratio(guaranteed_cost, memory_checkpoint_cost);
}

CostParams with_detector(CostParams costs, const Detector& detector) {
  detector.validate();
  costs.partial_verification = detector.cost;
  costs.recall = detector.recall;
  costs.validate();
  return costs;
}

}  // namespace resilience::core
