#include "resilience/core/pattern.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace resilience::core {

namespace {

constexpr double kFractionTolerance = 1e-9;

double fraction_sum(const std::vector<double>& fractions) {
  return std::accumulate(fractions.begin(), fractions.end(), 0.0);
}

}  // namespace

const std::vector<PatternKind>& all_pattern_kinds() {
  static const std::vector<PatternKind> kinds = {
      PatternKind::kD,  PatternKind::kDVg,  PatternKind::kDV,
      PatternKind::kDM, PatternKind::kDMVg, PatternKind::kDMV};
  return kinds;
}

std::string pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kD:
      return "PD";
    case PatternKind::kDVg:
      return "PDV*";
    case PatternKind::kDV:
      return "PDV";
    case PatternKind::kDM:
      return "PDM";
    case PatternKind::kDMVg:
      return "PDMV*";
    case PatternKind::kDMV:
      return "PDMV";
  }
  throw std::logic_error("pattern_name: unreachable");
}

PatternKind pattern_kind_from_name(const std::string& name) {
  std::string key;
  for (const char ch : name) {
    if (!std::isspace(static_cast<unsigned char>(ch))) {
      key += static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
  }
  for (const auto kind : all_pattern_kinds()) {
    if (pattern_name(kind) == key) {
      return kind;
    }
  }
  throw std::invalid_argument("pattern_kind_from_name: unknown pattern '" + name + "'");
}

bool uses_memory_checkpoints(PatternKind kind) noexcept {
  return kind == PatternKind::kDM || kind == PatternKind::kDMVg ||
         kind == PatternKind::kDMV;
}

bool uses_intermediate_verifications(PatternKind kind) noexcept {
  return kind == PatternKind::kDVg || kind == PatternKind::kDV ||
         kind == PatternKind::kDMVg || kind == PatternKind::kDMV;
}

bool uses_partial_verifications(PatternKind kind) noexcept {
  return kind == PatternKind::kDV || kind == PatternKind::kDMV;
}

PatternSpec::PatternSpec(double work, std::vector<SegmentSpec> segments,
                         bool guaranteed_intermediates)
    : work_(work),
      segments_(std::move(segments)),
      guaranteed_intermediates_(guaranteed_intermediates) {
  if (!(work_ > 0.0) || !std::isfinite(work_)) {
    throw std::invalid_argument("PatternSpec: work must be positive and finite");
  }
  if (segments_.empty()) {
    throw std::invalid_argument("PatternSpec: need at least one segment");
  }
  double alpha_sum = 0.0;
  for (const auto& segment : segments_) {
    if (!(segment.alpha > 0.0)) {
      throw std::invalid_argument("PatternSpec: segment fraction must be positive");
    }
    if (segment.beta.empty()) {
      throw std::invalid_argument("PatternSpec: segment needs at least one chunk");
    }
    for (const double b : segment.beta) {
      if (!(b > 0.0)) {
        throw std::invalid_argument("PatternSpec: chunk fraction must be positive");
      }
    }
    if (std::fabs(fraction_sum(segment.beta) - 1.0) > kFractionTolerance) {
      throw std::invalid_argument("PatternSpec: chunk fractions must sum to 1");
    }
    alpha_sum += segment.alpha;
  }
  if (std::fabs(alpha_sum - 1.0) > kFractionTolerance) {
    throw std::invalid_argument("PatternSpec: segment fractions must sum to 1");
  }
}

std::size_t PatternSpec::total_chunks() const noexcept {
  std::size_t total = 0;
  for (const auto& segment : segments_) {
    total += segment.chunks();
  }
  return total;
}

std::size_t PatternSpec::partial_verification_count() const noexcept {
  return total_chunks() - segment_count();
}

double PatternSpec::chunk_work(std::size_t segment, std::size_t chunk) const {
  const auto& seg = segments_.at(segment);
  return work_ * seg.alpha * seg.beta.at(chunk);
}

double PatternSpec::segment_work(std::size_t segment) const {
  return work_ * segments_.at(segment).alpha;
}

PatternSpec PatternSpec::with_work(double new_work) const {
  return PatternSpec(new_work, segments_, guaranteed_intermediates_);
}

std::string PatternSpec::describe() const {
  std::ostringstream os;
  os << "W=" << work_ << "s n=" << segment_count() << " m=[";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << segments_[i].chunks();
  }
  os << ']';
  return os.str();
}

std::vector<double> optimal_chunk_fractions(std::size_t chunks, double recall) {
  if (chunks == 0) {
    throw std::invalid_argument("optimal_chunk_fractions: need at least one chunk");
  }
  if (!(recall > 0.0) || recall > 1.0) {
    throw std::invalid_argument("optimal_chunk_fractions: recall must be in (0, 1]");
  }
  const auto m = static_cast<double>(chunks);
  if (chunks == 1) {
    return {1.0};
  }
  // Eq. (18): denominators (m-2)r + 2; boundary chunks carry weight 1,
  // interior chunks carry weight r.
  const double denom = (m - 2.0) * recall + 2.0;
  std::vector<double> beta(chunks, recall / denom);
  beta.front() = 1.0 / denom;
  beta.back() = 1.0 / denom;
  // Remove accumulated rounding so the invariant sum == 1 holds exactly
  // enough for PatternSpec's tolerance.
  const double sum = std::accumulate(beta.begin(), beta.end(), 0.0);
  for (double& b : beta) {
    b /= sum;
  }
  return beta;
}

PatternSpec make_pattern(PatternKind kind, double work, std::size_t segments_n,
                         std::size_t chunks_m, double recall) {
  if (!uses_memory_checkpoints(kind)) {
    segments_n = 1;
  }
  if (!uses_intermediate_verifications(kind)) {
    chunks_m = 1;
  }
  if (segments_n == 0 || chunks_m == 0) {
    throw std::invalid_argument("make_pattern: n and m must be positive");
  }
  const double effective_recall = uses_partial_verifications(kind) ? recall : 1.0;

  std::vector<SegmentSpec> segments(segments_n);
  const double alpha = 1.0 / static_cast<double>(segments_n);
  for (auto& segment : segments) {
    segment.alpha = alpha;
    segment.beta = optimal_chunk_fractions(chunks_m, effective_recall);
  }
  // P_DV*/P_DMV* interleave *guaranteed* verifications between chunks.
  const bool guaranteed_intermediates =
      uses_intermediate_verifications(kind) && !uses_partial_verifications(kind);
  return PatternSpec(work, std::move(segments), guaranteed_intermediates);
}

}  // namespace resilience::core
