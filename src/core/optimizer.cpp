#include "resilience/core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "resilience/core/first_order.hpp"
#include "resilience/util/thread_pool.hpp"

namespace resilience::core {

namespace {

constexpr double kGoldenRatio = 0.6180339887498949;  // (sqrt(5) - 1) / 2

/// Exact overhead of the canonical (kind, n, m, W) pattern through the
/// one-shot evaluate_pattern path (allocates per call); +inf where the
/// evaluator rejects the configuration (e.g. success probability underflow
/// for absurdly long patterns). Kept as the legacy baseline the fused
/// evaluator path is benchmarked against.
double exact_overhead(PatternKind kind, std::size_t n, std::size_t m, double work,
                      const ModelParams& params, const EvaluationOptions& eval) {
  try {
    const PatternSpec pattern = make_pattern(kind, work, n, m, params.costs.recall);
    return evaluate_pattern(pattern, params, eval).overhead;
  } catch (const std::domain_error&) {
    return std::numeric_limits<double>::infinity();
  }
}

/// One lattice cell of the (n, m) search space.
struct Cell {
  std::size_t n = 1;
  std::size_t m = 1;

  [[nodiscard]] std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(n) << 32) | static_cast<std::uint64_t>(m);
  }
  bool operator==(const Cell& other) const noexcept {
    return n == other.n && m == other.m;
  }
};

/// Exact evaluation of one cell: inner golden-section search over W, then
/// the exact overhead at that optimum.
struct CellValue {
  double overhead = std::numeric_limits<double>::infinity();
  double work = 0.0;
};

/// Golden-section minimization over W with a bracket derived from `center`
/// (the first-order W* or a warm-start hint): [center/50, 50*center]
/// clamped to the global [work_lo, work_hi]. H is unimodal in W and the
/// first-order W* is within a small factor of the true optimum in every
/// regime we care about, so the tight bracket is normally safe — and when
/// it is not (a stale warm hint), the minimizer lands on a tightened edge
/// and the search re-runs on the full bracket, so the result never depends
/// on the quality of the hint.
double bracketed_work_minimum(const std::function<double(double)>& objective,
                              double center, const OptimizerOptions& options) {
  double lo = options.work_lo;
  double hi = options.work_hi;
  if (std::isfinite(center) && center > 0.0) {
    const double tight_lo = std::max(options.work_lo, center / 50.0);
    const double tight_hi = std::min(options.work_hi, center * 50.0);
    if (tight_hi > tight_lo) {
      lo = tight_lo;
      hi = tight_hi;
    }
  }
  double work = golden_section_minimize(objective, lo, hi, options.work_tolerance);
  const double margin = 2.0 * options.work_tolerance;
  const bool pinned_lo = work - lo <= margin && lo > options.work_lo;
  const bool pinned_hi = hi - work <= margin && hi < options.work_hi;
  if (pinned_lo || pinned_hi) {
    work = golden_section_minimize(objective, options.work_lo, options.work_hi,
                                   options.work_tolerance);
  }
  return work;
}

/// Fused cell evaluation: bind the (kind, n, m) shape once, then probe W
/// through the allocation-free ExactEvaluator. One evaluator per worker
/// thread persists across cells, so re-binding reuses the arena capacity
/// instead of reallocating per cell.
CellValue evaluate_cell_fused(PatternKind kind, std::size_t n, std::size_t m,
                              const ModelParams& params,
                              const OptimizerOptions& options) {
  thread_local std::optional<ExactEvaluator> shared_evaluator;
  if (shared_evaluator.has_value()) {
    shared_evaluator->reset(params, options.evaluation);
  } else {
    shared_evaluator.emplace(params, options.evaluation);
  }
  ExactEvaluator& evaluator = *shared_evaluator;
  evaluator.bind_canonical(kind, n, m);
  const std::function<double(double)> objective = [&](double w) {
    try {
      return evaluator.overhead_at(w);
    } catch (const std::domain_error&) {
      return std::numeric_limits<double>::infinity();
    }
  };
  // The bracket center is always the cell's own first-order W*, never the
  // caller's work_hint: a cell's (W, H) must be a pure function of
  // (kind, n, m, params, evaluation options) so that cold, chain-warm and
  // cross-grid-seeded searches all land on bit-identical values — the
  // identity the sweep cache's partial-result reuse is built on.
  const double center = overhead_coefficients(kind, params, n, m).optimal_work();
  CellValue value;
  value.work = bracketed_work_minimum(objective, center, options);
  value.overhead = objective(value.work);
  return value;
}

/// The pre-sweep W search: per-probe make_pattern + evaluate_pattern, fixed
/// first-order bracket, no interior fallback. Selected by
/// OptimizerOptions::legacy_cell_evaluation so BENCH_micro.json can keep
/// measuring the fused path against it.
double legacy_optimize_work_length(PatternKind kind, std::size_t segments_n,
                                   std::size_t chunks_m, const ModelParams& params,
                                   const OptimizerOptions& options) {
  const auto coeff = overhead_coefficients(kind, params, segments_n, chunks_m);
  double lo = options.work_lo;
  double hi = options.work_hi;
  const double first_order_work = coeff.optimal_work();
  if (std::isfinite(first_order_work) && first_order_work > 0.0) {
    lo = std::max(options.work_lo, first_order_work / 50.0);
    hi = std::min(options.work_hi, first_order_work * 50.0);
    if (!(hi > lo)) {
      lo = options.work_lo;
      hi = options.work_hi;
    }
  }
  return golden_section_minimize(
      [&](double w) {
        return exact_overhead(kind, segments_n, chunks_m, w, params,
                              options.evaluation);
      },
      lo, hi, options.work_tolerance);
}

/// Memoized, pool-parallel evaluator of (n, m) cells. Cell evaluations are
/// pure functions of (kind, params, options), so concurrent evaluation and
/// memoization cannot change any value — only the wall-clock time.
class CellEvaluator {
 public:
  CellEvaluator(PatternKind kind, const ModelParams& params,
                const OptimizerOptions& options)
      : kind_(kind),
        params_(params),
        options_(options),
        pool_(options.pool != nullptr ? *options.pool : util::global_pool()) {}

  /// Evaluates every not-yet-memoized cell of `cells` across the pool (or
  /// inline under OptimizerOptions::serial_cells, which callers running
  /// inside pool tasks must set — parallel_for does not nest).
  void prefetch(const std::vector<Cell>& cells) {
    std::vector<Cell> fresh;
    fresh.reserve(cells.size());
    {
      const std::lock_guard lock(memo_mutex_);
      for (const Cell& cell : cells) {
        if (memo_.find(cell.key()) == memo_.end() &&
            std::find(fresh.begin(), fresh.end(), cell) == fresh.end()) {
          fresh.push_back(cell);
        }
      }
    }
    if (fresh.empty()) {
      return;
    }
    if (options_.serial_cells) {
      for (const Cell& cell : fresh) {
        const CellValue value = evaluate(cell);
        const std::lock_guard lock(memo_mutex_);
        memo_.emplace(cell.key(), value);
      }
      return;
    }
    pool_.parallel_for(
        fresh.size(),
        [&](std::size_t i) {
          const CellValue value = evaluate(fresh[i]);
          const std::lock_guard lock(memo_mutex_);
          memo_.emplace(fresh[i].key(), value);
        },
        /*grain=*/1);  // cells are expensive; one ticket each
  }

  /// Memoized lookup; evaluates inline on a miss. Returns by value so the
  /// result stays valid whatever later prefetches do to the table; every
  /// memo_ access takes the lock, so calling this concurrently with an
  /// in-flight prefetch is also safe (the sweep never needs to, but the
  /// invariant should not depend on that).
  CellValue value(const Cell& cell) {
    {
      const std::lock_guard lock(memo_mutex_);
      const auto it = memo_.find(cell.key());
      if (it != memo_.end()) {
        return it->second;
      }
    }
    const CellValue computed = evaluate(cell);
    const std::lock_guard lock(memo_mutex_);
    return memo_.emplace(cell.key(), computed).first->second;
  }

 private:
  CellValue evaluate(const Cell& cell) const {
    if (options_.legacy_cell_evaluation) {
      CellValue value;
      value.work =
          legacy_optimize_work_length(kind_, cell.n, cell.m, params_, options_);
      value.overhead = exact_overhead(kind_, cell.n, cell.m, value.work, params_,
                                      options_.evaluation);
      return value;
    }
    return evaluate_cell_fused(kind_, cell.n, cell.m, params_, options_);
  }

  PatternKind kind_;
  const ModelParams& params_;
  const OptimizerOptions& options_;
  util::ThreadPool& pool_;
  std::unordered_map<std::uint64_t, CellValue> memo_;
  std::mutex memo_mutex_;
};

}  // namespace

double golden_section_minimize(const std::function<double(double)>& f, double lo,
                               double hi, double tolerance) {
  if (!(hi > lo)) {
    throw std::invalid_argument("golden_section_minimize: empty bracket");
  }
  double a = lo;
  double b = hi;
  double x1 = b - kGoldenRatio * (b - a);
  double x2 = a + kGoldenRatio * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tolerance) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGoldenRatio * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGoldenRatio * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double optimize_work_length(PatternKind kind, std::size_t segments_n,
                            std::size_t chunks_m, const ModelParams& params,
                            const OptimizerOptions& options) {
  params.validate();
  if (options.legacy_cell_evaluation) {
    return legacy_optimize_work_length(kind, segments_n, chunks_m, params, options);
  }
  return evaluate_cell_fused(kind, segments_n, chunks_m, params, options).work;
}

NumericSolution optimize_pattern(PatternKind kind, const ModelParams& params,
                                 const OptimizerOptions& options) {
  params.validate();

  const bool search_n = uses_memory_checkpoints(kind);
  const bool search_m = uses_intermediate_verifications(kind);

  // Seed the search, exhaustively scan the (n, m) window around the seed
  // across the pool, then hill-descend over the integer lattice from the
  // window's best cell. F(n, m) = oef * orw is jointly convex (paper,
  // Theorem 4), and the exact objective inherits unimodality in the
  // regimes of interest, so neighborhood descent from the scan winner finds
  // the lattice optimum — wherever the seed comes from. Every cell
  // evaluation is memoized, so the descent never re-runs the inner W search
  // for a cell the scan already covered. The seed is the first-order
  // closed-form solution unless the caller supplies a warm start (a grid
  // neighbor's optimum in SweepRunner).
  CellEvaluator evaluator(kind, params, options);

  const bool warm_seeded =
      options.seed_segments_n > 0 || options.seed_chunks_m > 0;
  std::size_t n = 1;
  std::size_t m = 1;
  if (warm_seeded) {
    n = search_n ? std::min(std::max<std::size_t>(options.seed_segments_n, 1),
                            options.max_segments)
                 : 1;
    m = search_m ? std::min(std::max<std::size_t>(options.seed_chunks_m, 1),
                            options.max_chunks)
                 : 1;
  } else if (search_n || search_m) {
    const FirstOrderSolution seed = solve_first_order(kind, params);
    n = search_n ? std::min(seed.segments_n, options.max_segments) : 1;
    m = search_m ? std::min(seed.chunks_m, options.max_chunks) : 1;
  }

  const auto dimension_window = [&](std::size_t center, std::size_t bound,
                                    bool searched) {
    std::vector<std::size_t> values;
    if (!searched) {
      values.push_back(1);
      return values;
    }
    const std::size_t lo =
        center > options.scan_radius ? center - options.scan_radius : 1;
    const std::size_t hi = std::min(bound, center + options.scan_radius);
    for (std::size_t v = lo; v <= hi; ++v) {
      values.push_back(v);
    }
    return values;
  };

  std::vector<Cell> window;
  for (const std::size_t wn : dimension_window(n, options.max_segments, search_n)) {
    for (const std::size_t wm : dimension_window(m, options.max_chunks, search_m)) {
      window.push_back({wn, wm});
    }
  }
  evaluator.prefetch(window);

  Cell best{n, m};
  CellValue best_value = evaluator.value(best);
  for (const Cell& cell : window) {
    const CellValue& value = evaluator.value(cell);
    if (value.overhead < best_value.overhead - 1e-12) {
      best = cell;
      best_value = value;
    }
  }

  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<Cell> moves;
    if (search_n) {
      if (best.n + 1 <= options.max_segments) {
        moves.push_back({best.n + 1, best.m});
      }
      if (best.n > 1) {
        moves.push_back({best.n - 1, best.m});
      }
    }
    if (search_m) {
      if (best.m + 1 <= options.max_chunks) {
        moves.push_back({best.n, best.m + 1});
      }
      if (best.m > 1) {
        moves.push_back({best.n, best.m - 1});
      }
    }
    // All neighbors of the round evaluate concurrently; the winner is
    // picked deterministically (first improving move in declaration order
    // wins ties), so the pool size never changes the outcome.
    evaluator.prefetch(moves);
    for (const Cell& move : moves) {
      const CellValue& value = evaluator.value(move);
      if (value.overhead < best_value.overhead - 1e-12) {
        best = move;
        best_value = value;
        improved = true;
        break;  // greedy: re-expand the neighborhood from the new cell
      }
    }
  }

  n = best.n;
  m = best.m;
  const double best_overhead = best_value.overhead;
  const double best_work = best_value.work;
  NumericSolution solution{
      make_pattern(kind, best_work, n, m, params.costs.recall), best_overhead, n, m};

  if (options.optimize_chunk_fractions && search_m && m > 1) {
    // Replace the closed-form chunk fractions by numerically optimized ones
    // and keep whichever evaluates better (they should coincide; the
    // comparison is the validation).
    const std::vector<double> beta =
        optimize_chunk_fractions_numeric(m, params.costs.recall);
    std::vector<SegmentSpec> segments(n);
    for (auto& segment : segments) {
      segment.alpha = 1.0 / static_cast<double>(n);
      segment.beta = beta;
    }
    const PatternSpec refined(best_work, std::move(segments));
    const double refined_overhead =
        evaluate_pattern(refined, params, options.evaluation).overhead;
    if (refined_overhead < solution.overhead) {
      solution.pattern = refined;
      solution.overhead = refined_overhead;
    }
  }
  return solution;
}

std::vector<double> optimize_chunk_fractions_numeric(std::size_t chunks,
                                                     double recall,
                                                     std::size_t iterations) {
  if (chunks == 0) {
    throw std::invalid_argument("optimize_chunk_fractions_numeric: zero chunks");
  }
  if (chunks == 1) {
    return {1.0};
  }
  // Minimize beta^T A beta on the simplex by pairwise mass transfers: for a
  // quadratic objective, the optimal transfer between coordinates (i, j)
  // along e_i - e_j has the closed form below; cycling over all pairs is a
  // convergent coordinate descent on the simplex.
  const std::size_t m = chunks;
  std::vector<double> beta(m, 1.0 / static_cast<double>(m));
  std::vector<std::vector<double>> a(m, std::vector<double>(m));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto d = static_cast<double>(i > j ? i - j : j - i);
      a[i][j] = 0.5 * (1.0 + std::pow(1.0 - recall, d));
    }
  }
  const auto gradient = [&](std::size_t i) {
    double g = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      g += 2.0 * a[i][j] * beta[j];
    }
    return g;
  };
  for (std::size_t it = 0; it < iterations; ++it) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        // Objective restricted to beta + t (e_i - e_j) is quadratic with
        // curvature c = 2 (A_ii + A_jj - 2 A_ij) and slope g_i - g_j.
        const double curvature = 2.0 * (a[i][i] + a[j][j] - 2.0 * a[i][j]);
        if (curvature <= 0.0) {
          continue;
        }
        double t = -(gradient(i) - gradient(j)) / curvature;
        t = std::clamp(t, -beta[i], beta[j]);  // keep both coordinates >= 0
        beta[i] += t;
        beta[j] -= t;
        max_change = std::max(max_change, std::fabs(t));
      }
    }
    if (max_change < 1e-14) {
      break;
    }
  }
  return beta;
}

}  // namespace resilience::core
