#include "resilience/core/first_order.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resilience::core {

namespace {

/// Silent-error re-execution factor of a segment with m chunks sized by
/// Eq. (18): f*(m) = (1 + (2-r)/((m-2)r + 2)) / 2 (proof of Theorem 3).
/// With r = 1 this reduces to the equal-chunk factor (1 + 1/m)/2.
double silent_fraction(std::size_t chunks_m, double recall) {
  const auto m = static_cast<double>(chunks_m);
  return 0.5 * (1.0 + (2.0 - recall) / ((m - 2.0) * recall + 2.0));
}

/// "Effective" guaranteed-verification cost with partial verifications
/// folded in: V* - ((2-r)/r) V + C_M appears throughout the PDV/PDMV rows.
double partial_adjusted_cost(const CostParams& costs) {
  const double ratio = (2.0 - costs.recall) / costs.recall;
  return costs.guaranteed_verification - ratio * costs.partial_verification +
         costs.memory_checkpoint;
}

struct IntegerChoice {
  std::size_t value = 1;
  double objective = 0.0;
};

/// Evaluates F over the floor/ceil integer neighbours of a rational
/// minimizer and keeps the best (Theorems 2-4's rounding rule).
template <typename F>
IntegerChoice round_minimizer(double rational, F&& objective) {
  const double floored = std::floor(rational);
  const auto lo = static_cast<std::size_t>(std::max(1.0, floored));
  const auto hi = static_cast<std::size_t>(std::max(1.0, std::ceil(rational)));
  IntegerChoice best{lo, objective(lo)};
  if (hi != lo) {
    const double hi_objective = objective(hi);
    if (hi_objective < best.objective) {
      best = IntegerChoice{hi, hi_objective};
    }
  }
  return best;
}

}  // namespace

double OverheadCoefficients::optimal_work() const noexcept {
  if (reexecuted_work <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt(error_free / reexecuted_work);
}

double OverheadCoefficients::optimal_overhead() const noexcept {
  return 2.0 * std::sqrt(error_free * reexecuted_work);
}

double OverheadCoefficients::overhead_at(double work) const noexcept {
  return error_free / work + reexecuted_work * work;
}

PatternSpec FirstOrderSolution::to_pattern(double recall) const {
  return make_pattern(kind, work, segments_n, chunks_m, recall);
}

OverheadCoefficients overhead_coefficients(PatternKind kind,
                                           const ModelParams& params,
                                           std::size_t segments_n,
                                           std::size_t chunks_m) {
  params.validate();
  const CostParams& c = params.costs;
  const ErrorRates& e = params.rates;
  if (!uses_memory_checkpoints(kind)) {
    segments_n = 1;
  }
  if (!uses_intermediate_verifications(kind)) {
    chunks_m = 1;
  }
  if (segments_n == 0 || chunks_m == 0) {
    throw std::invalid_argument("overhead_coefficients: n and m must be positive");
  }
  const auto n = static_cast<double>(segments_n);
  const auto m = static_cast<double>(chunks_m);
  const double recall = uses_partial_verifications(kind) ? c.recall : 1.0;
  const double verif_cost =
      uses_partial_verifications(kind) ? c.partial_verification
                                       : c.guaranteed_verification;

  OverheadCoefficients coeff;
  // Error-free overhead per pattern: each segment ends with V* + C_M, each
  // of the (m-1) intermediate chunk boundaries carries one verification,
  // and the pattern closes with C_D.
  coeff.error_free = n * (m - 1.0) * verif_cost +
                     n * (c.guaranteed_verification + c.memory_checkpoint) +
                     c.disk_checkpoint;
  // Re-executed work fraction: silent errors roll back one segment
  // (weighted by the chunk-level detection chain), fail-stop errors lose
  // half of the pattern on average.
  coeff.reexecuted_work =
      silent_fraction(chunks_m, recall) * e.silent / n + e.fail_stop / 2.0;
  return coeff;
}

RationalMinimizer rational_minimizer(PatternKind kind, const ModelParams& params) {
  params.validate();
  const CostParams& c = params.costs;
  const ErrorRates& e = params.rates;
  const double vg = c.guaranteed_verification;
  const double cm = c.memory_checkpoint;
  const double cd = c.disk_checkpoint;
  const double v = c.partial_verification;
  const double r = c.recall;
  const double ratio = (2.0 - r) / r;

  RationalMinimizer out;
  // Without silent errors every verification and memory checkpoint is pure
  // overhead: F(n, m) is increasing in both, so the optimum is the base
  // shape. (The Table 1 minimizer expressions assume lambda_s > 0; the
  // P_DMV m-bar*, for instance, is rate-independent and would wrongly keep
  // interleaving verifications.)
  if (e.silent <= 0.0) {
    return out;
  }
  switch (kind) {
    case PatternKind::kD:
      break;
    case PatternKind::kDVg:
      // Table 1 row 2: m* = sqrt(lambda_s/(lambda_s+lambda_f) * (C_M+C_D)/V*).
      out.m = std::sqrt(e.silent / (e.silent + e.fail_stop) * (cm + cd) / vg);
      break;
    case PatternKind::kDV:
      // Table 1 row 3 / Eq. (20).
      out.m = 2.0 - 2.0 / r +
              std::sqrt(e.silent / (e.silent + e.fail_stop) * ratio *
                        ((vg + cm + cd) / v - ratio));
      break;
    case PatternKind::kDM:
      // Table 1 row 4 / Eq. (13): n* = sqrt(2 lambda_s/lambda_f * C_D/(V*+C_M)).
      out.n = std::sqrt(2.0 * e.silent / e.fail_stop * cd / (vg + cm));
      break;
    case PatternKind::kDMVg:
      // Table 1 row 5: n* = sqrt(lambda_s/lambda_f * C_D/C_M), m* = sqrt(C_M/V*).
      out.n = std::sqrt(e.silent / e.fail_stop * cd / cm);
      out.m = std::sqrt(cm / vg);
      break;
    case PatternKind::kDMV:
      // Table 1 row 6 / Eqs. (27)-(28).
      out.n = std::sqrt(e.silent / e.fail_stop * cd / partial_adjusted_cost(c));
      out.m = 2.0 - 2.0 / r + std::sqrt(ratio * ((vg + cm) / v - ratio));
      break;
  }
  // Degenerate rates (one source disabled) can produce NaN/inf or sub-1
  // values; clamp to the feasible region [1, inf).
  if (!std::isfinite(out.n) || out.n < 1.0) {
    out.n = 1.0;
  }
  if (!std::isfinite(out.m) || out.m < 1.0) {
    out.m = 1.0;
  }
  return out;
}

FirstOrderSolution solve_first_order(PatternKind kind, const ModelParams& params) {
  const RationalMinimizer rational = rational_minimizer(kind, params);

  FirstOrderSolution solution;
  solution.kind = kind;
  solution.rational_n = rational.n;
  solution.rational_m = rational.m;

  // Round n and m jointly: for each integer neighbour of n-bar*, pick the
  // best integer neighbour of m-bar*, then keep the overall best product.
  const auto objective = [&](std::size_t n, std::size_t m) {
    const auto coeff = overhead_coefficients(kind, params, n, m);
    return coeff.error_free * coeff.reexecuted_work;
  };

  double best_objective = std::numeric_limits<double>::infinity();
  for (const double n_candidate :
       {std::max(1.0, std::floor(rational.n)), std::max(1.0, std::ceil(rational.n))}) {
    const auto n = static_cast<std::size_t>(n_candidate);
    const auto m_choice = round_minimizer(
        rational.m, [&](std::size_t m) { return objective(n, m); });
    if (m_choice.objective < best_objective) {
      best_objective = m_choice.objective;
      solution.segments_n = n;
      solution.chunks_m = m_choice.value;
    }
  }

  solution.coefficients =
      overhead_coefficients(kind, params, solution.segments_n, solution.chunks_m);
  solution.work = solution.coefficients.optimal_work();
  solution.overhead = solution.coefficients.optimal_overhead();
  return solution;
}

double closed_form_overhead(PatternKind kind, const ModelParams& params) {
  params.validate();
  const CostParams& c = params.costs;
  const ErrorRates& e = params.rates;
  const double vg = c.guaranteed_verification;
  const double cm = c.memory_checkpoint;
  const double cd = c.disk_checkpoint;
  const double v = c.partial_verification;
  const double r = c.recall;
  const double ratio = (2.0 - r) / r;
  const double lf = e.fail_stop;
  const double ls = e.silent;

  switch (kind) {
    case PatternKind::kD:
      return 2.0 * std::sqrt((ls + lf / 2.0) * (vg + cm + cd));
    case PatternKind::kDVg:
      return std::sqrt(2.0 * (ls + lf) * (cm + cd)) + std::sqrt(2.0 * ls * vg);
    case PatternKind::kDV:
      return std::sqrt(2.0 * (ls + lf) * (vg - ratio * v + cm + cd)) +
             std::sqrt(2.0 * ls * ratio * v);
    case PatternKind::kDM:
      return 2.0 * std::sqrt(ls * (vg + cm)) + std::sqrt(2.0 * lf * cd);
    case PatternKind::kDMVg:
      return std::sqrt(2.0 * lf * cd) + std::sqrt(2.0 * ls * cm) +
             std::sqrt(2.0 * ls * vg);
    case PatternKind::kDMV:
      return std::sqrt(2.0 * lf * cd) +
             std::sqrt(2.0 * ls * (vg - ratio * v + cm)) +
             std::sqrt(2.0 * ls * ratio * v);
  }
  throw std::logic_error("closed_form_overhead: unreachable");
}

double young_daly_period(const ModelParams& params) noexcept {
  if (params.rates.fail_stop <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt(2.0 * params.costs.disk_checkpoint / params.rates.fail_stop);
}

double silent_only_period(const ModelParams& params) noexcept {
  if (params.rates.silent <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt((params.costs.guaranteed_verification +
                    params.costs.memory_checkpoint) /
                   params.rates.silent);
}

}  // namespace resilience::core
