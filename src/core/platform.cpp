#include "resilience/core/platform.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace resilience::core {

ModelParams Platform::model_params() const {
  ModelParams params;
  params.costs = CostParams::paper_defaults(disk_checkpoint, memory_checkpoint);
  params.rates = rates;
  params.validate();
  return params;
}

ErrorRates Platform::per_node_rates() const {
  if (nodes == 0) {
    throw std::logic_error("Platform::per_node_rates: node count is zero");
  }
  const auto n = static_cast<double>(nodes);
  return ErrorRates{rates.fail_stop / n, rates.silent / n};
}

Platform Platform::scaled_to(std::size_t node_count) const {
  const ErrorRates node_rates = per_node_rates();
  Platform scaled = *this;
  scaled.name = name + "@" + std::to_string(node_count);
  scaled.nodes = node_count;
  const auto n = static_cast<double>(node_count);
  scaled.rates = ErrorRates{node_rates.fail_stop * n, node_rates.silent * n};
  return scaled;
}

Platform Platform::with_disk_checkpoint(double cost) const {
  Platform modified = *this;
  modified.disk_checkpoint = cost;
  return modified;
}

Platform Platform::with_rate_factors(double fail_stop_factor,
                                     double silent_factor) const {
  Platform modified = *this;
  modified.rates = rates.scaled(fail_stop_factor, silent_factor);
  return modified;
}

// Table 2 of the paper (rates in errors/second, costs in seconds).
Platform hera() { return Platform{"Hera", 256, {9.46e-7, 3.38e-6}, 300.0, 15.4}; }

Platform atlas() { return Platform{"Atlas", 512, {5.19e-7, 7.78e-6}, 439.0, 9.1}; }

Platform coastal() {
  return Platform{"Coastal", 1024, {4.02e-7, 2.01e-6}, 1051.0, 4.5};
}

Platform coastal_ssd() {
  return Platform{"CoastalSSD", 1024, {4.02e-7, 2.01e-6}, 2500.0, 180.0};
}

std::vector<Platform> all_platforms() {
  return {hera(), atlas(), coastal(), coastal_ssd()};
}

Platform platform_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  key.erase(std::remove_if(key.begin(), key.end(),
                           [](unsigned char ch) { return ch == '_' || ch == ' ' || ch == '-'; }),
            key.end());
  for (const auto& platform : all_platforms()) {
    std::string candidate = platform.name;
    std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                   [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
    if (candidate == key) {
      return platform;
    }
  }
  throw std::invalid_argument("platform_by_name: unknown platform '" + name + "'");
}

}  // namespace resilience::core
