#include "resilience/core/sweep.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "resilience/core/expected_time.hpp"
#include "resilience/util/thread_pool.hpp"

namespace resilience::core {

namespace {

/// Implicit single-element axes: an empty axis means "platform default".
std::size_t axis_size(std::size_t declared) noexcept {
  return declared == 0 ? 1 : declared;
}

std::string axis_error(const char* axis, std::size_t index,
                       const std::string& what) {
  return "ScenarioGrid." + std::string(axis) + "[" + std::to_string(index) +
         "]: " + what;
}

/// A cost-override field is either >= 0 (override) or exactly -1 (keep the
/// platform's value). Anything else is a typo, not a sentinel.
void check_override_field(const char* axis, std::size_t index,
                          const char* field, double value) {
  if (std::isnan(value) || (value < 0.0 && value != -1.0)) {
    throw std::invalid_argument(
        axis_error(axis, index, std::string(field) +
                                    " must be >= 0 or the -1 sentinel (got " +
                                    std::to_string(value) + ")"));
  }
}

/// FNV-1a 64-bit over an explicit byte stream. Doubles are hashed by bit
/// pattern, so the signature distinguishes exactly what a bit-identical
/// table comparison would.
class SignatureHasher {
 public:
  void mix_bytes(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t value) noexcept { mix_bytes(&value, sizeof value); }
  void mix(double value) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    mix(bits);
  }
  void mix(bool value) noexcept { mix(std::uint64_t{value ? 1u : 0u}); }
  void mix(const std::string& value) noexcept {
    mix(std::uint64_t{value.size()});
    mix_bytes(value.data(), value.size());
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// The option fields that change cell values — the shared factor of
/// GridSignature and ChainKey. Warm-start policy, scan radius, seed source
/// and pool choice are deliberately excluded: the runner guarantees they
/// do not change results (pinned by the determinism/bit-identity tests).
void mix_result_options(SignatureHasher& hasher, const SweepOptions& options) {
  hasher.mix(options.numeric_optimum);
  const OptimizerOptions& opt = options.optimizer;
  hasher.mix(std::uint64_t{opt.max_segments});
  hasher.mix(std::uint64_t{opt.max_chunks});
  hasher.mix(opt.work_lo);
  hasher.mix(opt.work_hi);
  hasher.mix(opt.work_tolerance);
  hasher.mix(opt.optimize_chunk_fractions);
  hasher.mix(opt.evaluation.faulty_verifications);
  hasher.mix(opt.evaluation.faulty_operations);
  hasher.mix(opt.legacy_cell_evaluation);
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0; value >>= 4) {
    out[i] = digits[value & 0xF];
  }
  return out;
}

bool parse_hex64(std::string_view text, std::uint64_t& out) {
  if (text.size() != 16) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = value;
  return true;
}

}  // namespace

std::size_t ScenarioGrid::point_count() const noexcept {
  return platforms.size() * axis_size(node_counts.size()) *
         axis_size(rate_factors.size()) * axis_size(cost_overrides.size());
}

std::size_t ScenarioGrid::cell_count() const {
  return point_count() * resolved_kinds().size();
}

std::vector<PatternKind> ScenarioGrid::resolved_kinds() const {
  return kinds.empty() ? all_pattern_kinds() : kinds;
}

void ScenarioGrid::validate() const {
  if (platforms.empty()) {
    throw std::invalid_argument("ScenarioGrid: need at least one platform");
  }
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    if (node_counts[i] == 0) {
      throw std::invalid_argument(
          axis_error("node_counts", i, "node count must be positive"));
    }
  }
  for (std::size_t i = 0; i < rate_factors.size(); ++i) {
    const RateFactors& f = rate_factors[i];
    if (!(f.fail_stop > 0.0) || std::isinf(f.fail_stop)) {
      throw std::invalid_argument(axis_error(
          "rate_factors", i, "fail_stop factor must be positive and finite"));
    }
    if (!(f.silent > 0.0) || std::isinf(f.silent)) {
      throw std::invalid_argument(axis_error(
          "rate_factors", i, "silent factor must be positive and finite"));
    }
  }
  for (std::size_t i = 0; i < cost_overrides.size(); ++i) {
    const CostOverride& o = cost_overrides[i];
    check_override_field("cost_overrides", i, "disk_checkpoint",
                         o.disk_checkpoint);
    check_override_field("cost_overrides", i, "partial_verification",
                         o.partial_verification);
    check_override_field("cost_overrides", i, "recall", o.recall);
  }
}

std::vector<ScenarioPoint> resolve_points(const ScenarioGrid& grid) {
  grid.validate();
  const std::size_t nodes_n = axis_size(grid.node_counts.size());
  const std::size_t rates_n = axis_size(grid.rate_factors.size());
  const std::size_t costs_n = axis_size(grid.cost_overrides.size());

  std::vector<ScenarioPoint> points;
  points.reserve(grid.platforms.size() * nodes_n * rates_n * costs_n);
  for (std::size_t ip = 0; ip < grid.platforms.size(); ++ip) {
    for (std::size_t in = 0; in < nodes_n; ++in) {
      for (std::size_t ir = 0; ir < rates_n; ++ir) {
        for (std::size_t ic = 0; ic < costs_n; ++ic) {
          ScenarioPoint point;
          point.platform_index = ip;
          point.node_index = in;
          point.rate_index = ir;
          point.cost_index = ic;
          Platform platform = grid.platforms[ip];
          if (!grid.node_counts.empty()) {
            platform = platform.scaled_to(grid.node_counts[in]);
          }
          if (!grid.rate_factors.empty()) {
            const RateFactors& f = grid.rate_factors[ir];
            platform = platform.with_rate_factors(f.fail_stop, f.silent);
          }
          if (!grid.cost_overrides.empty()) {
            const CostOverride& o = grid.cost_overrides[ic];
            if (o.disk_checkpoint >= 0.0) {
              platform = platform.with_disk_checkpoint(o.disk_checkpoint);
            }
          }
          point.platform = platform;
          point.params = platform.model_params();
          if (!grid.cost_overrides.empty()) {
            const CostOverride& o = grid.cost_overrides[ic];
            if (o.partial_verification >= 0.0) {
              point.params.costs.partial_verification = o.partial_verification;
            }
            if (o.recall >= 0.0) {
              point.params.costs.recall = o.recall;
            }
            point.params.validate();
          }
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

void SweepTable::index_kinds() {
  kind_slot.fill(-1);
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    kind_slot[static_cast<std::size_t>(kinds[k])] =
        static_cast<std::int8_t>(k);
  }
}

const SweepCell& SweepTable::cell(std::size_t point_index, PatternKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  const std::int8_t slot = k < kind_slot.size() ? kind_slot[k] : -1;
  if (point_index >= points.size() || slot < 0) {
    throw std::out_of_range("SweepTable::cell: no such point/family");
  }
  return cells[point_index * kinds.size() + static_cast<std::size_t>(slot)];
}

std::string GridSignature::hex() const { return hex64(value); }

std::optional<GridSignature> GridSignature::from_hex(std::string_view text) {
  std::uint64_t value = 0;
  if (!parse_hex64(text, value)) {
    return std::nullopt;
  }
  return GridSignature{value};
}

std::string ChainKey::hex() const { return hex64(value); }

std::optional<ChainKey> ChainKey::from_hex(std::string_view text) {
  std::uint64_t value = 0;
  if (!parse_hex64(text, value)) {
    return std::nullopt;
  }
  return ChainKey{value};
}

ChainKey chain_key(const Platform& platform, const CostOverride& cost_override,
                   PatternKind kind, const SweepOptions& options) {
  SignatureHasher hasher;
  hasher.mix(std::uint64_t{1});  // chain-key format version
  hasher.mix(platform.name);
  hasher.mix(std::uint64_t{platform.nodes});
  hasher.mix(platform.rates.fail_stop);
  hasher.mix(platform.rates.silent);
  hasher.mix(platform.disk_checkpoint);
  hasher.mix(platform.memory_checkpoint);
  hasher.mix(cost_override.disk_checkpoint);
  hasher.mix(cost_override.partial_verification);
  hasher.mix(cost_override.recall);
  hasher.mix(std::uint64_t{static_cast<std::size_t>(kind)});
  mix_result_options(hasher, options);
  return ChainKey{hasher.value()};
}

std::vector<GridChain> grid_chains(const ScenarioGrid& grid,
                                   const SweepOptions& options) {
  grid.validate();
  const std::size_t costs_n = axis_size(grid.cost_overrides.size());
  const std::vector<PatternKind> kinds = grid.resolved_kinds();
  std::vector<GridChain> chains;
  chains.reserve(grid.platforms.size() * costs_n * kinds.size());
  for (std::size_t ip = 0; ip < grid.platforms.size(); ++ip) {
    for (std::size_t ic = 0; ic < costs_n; ++ic) {
      const CostOverride cost_override =
          grid.cost_overrides.empty() ? CostOverride{} : grid.cost_overrides[ic];
      for (std::size_t ik = 0; ik < kinds.size(); ++ik) {
        GridChain chain;
        chain.platform_index = ip;
        chain.cost_index = ic;
        chain.kind = kinds[ik];
        chain.key = chain_key(grid.platforms[ip], cost_override, kinds[ik],
                              options);
        chains.push_back(chain);
      }
    }
  }
  return chains;
}

GridSignature grid_signature(const ScenarioGrid& grid,
                             const SweepOptions& options) {
  return grid_signature(resolve_points(grid) /* validates */,
                        grid.resolved_kinds(), options);
}

GridSignature grid_signature(const std::vector<ScenarioPoint>& points,
                             const std::vector<PatternKind>& kinds,
                             const SweepOptions& options) {
  SignatureHasher hasher;
  hasher.mix(std::uint64_t{1});  // signature format version

  // Everything an observer of the resulting SweepTable can see about a
  // point: platform identity and the fully resolved cost/rate parameters.
  hasher.mix(std::uint64_t{points.size()});
  for (const ScenarioPoint& point : points) {
    hasher.mix(point.platform.name);
    hasher.mix(std::uint64_t{point.platform.nodes});
    hasher.mix(point.platform.rates.fail_stop);
    hasher.mix(point.platform.rates.silent);
    hasher.mix(point.platform.disk_checkpoint);
    hasher.mix(point.platform.memory_checkpoint);
    hasher.mix(point.params.rates.fail_stop);
    hasher.mix(point.params.rates.silent);
    const CostParams& costs = point.params.costs;
    hasher.mix(costs.disk_checkpoint);
    hasher.mix(costs.memory_checkpoint);
    hasher.mix(costs.disk_recovery);
    hasher.mix(costs.memory_recovery);
    hasher.mix(costs.guaranteed_verification);
    hasher.mix(costs.partial_verification);
    hasher.mix(costs.recall);
  }

  hasher.mix(std::uint64_t{kinds.size()});
  for (const PatternKind kind : kinds) {
    hasher.mix(std::uint64_t{static_cast<std::size_t>(kind)});
  }

  mix_result_options(hasher, options);

  return GridSignature{hasher.value()};
}

namespace {

bool same_bits(double a, double b) noexcept {
  std::uint64_t bits_a = 0;
  std::uint64_t bits_b = 0;
  std::memcpy(&bits_a, &a, sizeof bits_a);
  std::memcpy(&bits_b, &b, sizeof bits_b);
  return bits_a == bits_b;
}

/// |ln(a/b)| as a seed-distance component; positions that cannot be
/// compared on a log scale count as far-but-finite so a degenerate seed
/// list still yields a deterministic choice.
double log_distance(double a, double b) noexcept {
  if (!(a > 0.0) || !(b > 0.0) || std::isinf(a) || std::isinf(b)) {
    return same_bits(a, b) ? 0.0 : 1e3;
  }
  return std::fabs(std::log(a / b));
}

/// Nearest usable seed along the chain's (node count, rate factor)
/// ordering: node count is the outer (coarser) axis, so it dominates the
/// distance; ties resolve to the earliest candidate, which keeps the
/// choice deterministic for a fixed seed list. Seed choice can only move
/// the scan window, never the result, so a *nondeterministic* seed list
/// (e.g. LRU-ordered) is still safe — this ordering just favors the
/// closest optimum.
const ChainSeed* nearest_external_seed(const std::vector<ChainSeed>& seeds,
                                       const ScenarioPoint& point) {
  const ChainSeed* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const ChainSeed& seed : seeds) {
    if (!std::isfinite(seed.cell.overhead) || seed.cell.segments_n == 0 ||
        seed.cell.chunks_m == 0) {
      continue;  // degenerate source cells carry no usable optimum
    }
    const double distance =
        4.0 * log_distance(static_cast<double>(seed.node_count),
                           static_cast<double>(point.platform.nodes)) +
        log_distance(seed.params.rates.fail_stop, point.params.rates.fail_stop) +
        log_distance(seed.params.rates.silent, point.params.rates.silent);
    if (distance < best_distance) {
      best = &seed;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace

bool cells_bit_identical(const SweepCell& a, const SweepCell& b) noexcept {
  return a.point_index == b.point_index && a.kind == b.kind &&
         a.first_order.segments_n == b.first_order.segments_n &&
         a.first_order.chunks_m == b.first_order.chunks_m &&
         same_bits(a.first_order.rational_n, b.first_order.rational_n) &&
         same_bits(a.first_order.rational_m, b.first_order.rational_m) &&
         same_bits(a.first_order.work, b.first_order.work) &&
         same_bits(a.first_order.overhead, b.first_order.overhead) &&
         same_bits(a.first_order.coefficients.error_free,
                   b.first_order.coefficients.error_free) &&
         same_bits(a.first_order.coefficients.reexecuted_work,
                   b.first_order.coefficients.reexecuted_work) &&
         same_bits(a.exact_at_first_order, b.exact_at_first_order) &&
         a.segments_n == b.segments_n && a.chunks_m == b.chunks_m &&
         same_bits(a.work, b.work) && same_bits(a.overhead, b.overhead) &&
         a.warm_started == b.warm_started;
}

bool params_bit_identical(const ModelParams& a, const ModelParams& b) noexcept {
  return same_bits(a.rates.fail_stop, b.rates.fail_stop) &&
         same_bits(a.rates.silent, b.rates.silent) &&
         same_bits(a.costs.disk_checkpoint, b.costs.disk_checkpoint) &&
         same_bits(a.costs.memory_checkpoint, b.costs.memory_checkpoint) &&
         same_bits(a.costs.disk_recovery, b.costs.disk_recovery) &&
         same_bits(a.costs.memory_recovery, b.costs.memory_recovery) &&
         same_bits(a.costs.guaranteed_verification,
                   b.costs.guaranteed_verification) &&
         same_bits(a.costs.partial_verification,
                   b.costs.partial_verification) &&
         same_bits(a.costs.recall, b.costs.recall);
}

bool points_bit_identical(const ScenarioPoint& a,
                          const ScenarioPoint& b) noexcept {
  return a.platform_index == b.platform_index && a.node_index == b.node_index &&
         a.rate_index == b.rate_index && a.cost_index == b.cost_index &&
         a.platform.name == b.platform.name &&
         a.platform.nodes == b.platform.nodes &&
         same_bits(a.platform.rates.fail_stop, b.platform.rates.fail_stop) &&
         same_bits(a.platform.rates.silent, b.platform.rates.silent) &&
         same_bits(a.platform.disk_checkpoint, b.platform.disk_checkpoint) &&
         same_bits(a.platform.memory_checkpoint,
                   b.platform.memory_checkpoint) &&
         params_bit_identical(a.params, b.params);
}

bool tables_bit_identical(const SweepTable& a, const SweepTable& b) noexcept {
  if (a.kinds != b.kinds || a.points.size() != b.points.size() ||
      a.cells.size() != b.cells.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (!points_bit_identical(a.points[i], b.points[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!cells_bit_identical(a.cells[i], b.cells[i])) {
      return false;
    }
  }
  return true;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

SweepTable SweepRunner::run(const ScenarioGrid& grid) const {
  return run_impl(grid, nullptr);
}

SweepTable SweepRunner::run(const ScenarioGrid& grid, CellSink& sink) const {
  return run_impl(grid, &sink);
}

SweepTable SweepRunner::run_impl(const ScenarioGrid& grid,
                                 CellSink* sink) const {
  SweepTable table;
  table.points = resolve_points(grid);
  table.kinds = grid.resolved_kinds();  // never empty: defaults to all six
  table.index_kinds();
  table.cells.assign(table.points.size() * table.kinds.size(), SweepCell{});

  const std::size_t nodes_n = axis_size(grid.node_counts.size());
  const std::size_t rates_n = axis_size(grid.rate_factors.size());
  const std::size_t costs_n = axis_size(grid.cost_overrides.size());
  const std::size_t kinds_n = table.kinds.size();

  // Chains: fixed (platform, cost override, family), walking node counts
  // (outer) then rate factors (inner). Each chain is one pool task writing
  // only its own cells, so the table is bit-identical at any pool size.
  const std::size_t chain_count = grid.platforms.size() * costs_n * kinds_n;

  // Inner optimizations must not fan out on the pool the chains already
  // occupy (parallel_for does not nest).
  OptimizerOptions cold = options_.optimizer;
  cold.serial_cells = true;
  cold.seed_segments_n = 0;
  cold.seed_chunks_m = 0;
  cold.work_hint = 0.0;

  // Streamed delivery is serialized so sinks stay lock-free; the lock is
  // uncontended relative to the per-cell optimization cost.
  std::mutex sink_mutex;

  // Cancellation: the first chain to observe the token fired latches
  // `aborted` so every other chain bails at its next cell boundary
  // without re-reading the clock, and run_impl throws after the fan-in.
  // Cells already streamed to the sink stay valid (their values never
  // depended on the cancellation), but no table is returned.
  std::atomic<bool> aborted{false};

  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::global_pool();
  pool.parallel_for(
      chain_count,
      [&](std::size_t chain) {
        const std::size_t ip = chain / (costs_n * kinds_n);
        const std::size_t ic = (chain / kinds_n) % costs_n;
        const std::size_t ik = chain % kinds_n;
        const PatternKind kind = table.kinds[ik];

        // External seeds (cross-grid reuse): fetched once per chain. Only
        // numeric sweeps benefit — the analytic columns are cheap.
        std::vector<ChainSeed> seeds;
        if (options_.seed_source != nullptr && options_.numeric_optimum) {
          GridChain descriptor;
          descriptor.platform_index = ip;
          descriptor.cost_index = ic;
          descriptor.kind = kind;
          descriptor.key = chain_key(
              grid.platforms[ip],
              grid.cost_overrides.empty() ? CostOverride{}
                                          : grid.cost_overrides[ic],
              kind, options_);
          seeds = options_.seed_source->seeds_for(descriptor);
        }

        ExactEvaluator evaluator(table.points.front().params,
                                 cold.evaluation);  // arena reused chain-wide

        bool have_warm = false;
        std::size_t warm_n = 1;
        std::size_t warm_m = 1;
        double warm_work = 0.0;
        for (std::size_t in = 0; in < nodes_n; ++in) {
          for (std::size_t ir = 0; ir < rates_n; ++ir) {
            if (aborted.load(std::memory_order_relaxed) ||
                options_.cancel.cancelled()) {
              aborted.store(true, std::memory_order_relaxed);
              return;  // abandon this chain; peers bail at their next cell
            }
            const std::size_t point_index =
                ((ip * nodes_n + in) * rates_n + ir) * costs_n + ic;
            const ScenarioPoint& point = table.points[point_index];
            SweepCell& cell = table.cells[point_index * kinds_n + ik];

            // Value reuse: a supplied cell whose resolved parameters
            // bit-match this point's IS this cell (values are pure
            // functions of (kind, params, result-affecting options); the
            // chain key pinned everything but the parameters).
            const ChainSeed* match = nullptr;
            if (options_.numeric_optimum) {
              for (const ChainSeed& seed : seeds) {
                if (seed.cell.kind == kind &&
                    params_bit_identical(seed.params, point.params)) {
                  match = &seed;
                  break;
                }
              }
            }

            const bool warm = options_.numeric_optimum &&
                              options_.warm_start && have_warm;
            if (match != nullptr) {
              cell = match->cell;
              cell.point_index = point_index;
              cell.kind = kind;
              // The flag records what THIS sweep's schedule would have
              // done, not what the source sweep did — canonical, so a
              // reused table stays bit-identical to a cold one.
              cell.warm_started = warm;
            } else {
              cell.point_index = point_index;
              cell.kind = kind;

              cell.first_order = solve_first_order(kind, point.params);
              evaluator.reset(point.params, cold.evaluation);
              try {
                cell.exact_at_first_order =
                    evaluator
                        .evaluate(cell.first_order.to_pattern(
                            point.params.costs.recall))
                        .overhead;
              } catch (const std::domain_error&) {
                cell.exact_at_first_order =
                    std::numeric_limits<double>::infinity();
              }

              if (options_.numeric_optimum) {
                OptimizerOptions opts = cold;
                if (warm) {
                  opts.seed_segments_n = warm_n;
                  opts.seed_chunks_m = warm_m;
                  opts.work_hint = warm_work;
                  opts.scan_radius = options_.warm_scan_radius;
                } else if (const ChainSeed* external =
                               nearest_external_seed(seeds, point)) {
                  // Cold chain head (or post-degenerate restart): start
                  // from the nearest cached optimum instead of the
                  // first-order seed. Seeds shrink the scan window only —
                  // the descent lands on the same lattice optimum.
                  opts.seed_segments_n = external->cell.segments_n;
                  opts.seed_chunks_m = external->cell.chunks_m;
                  opts.work_hint = external->cell.work;
                  opts.scan_radius = options_.warm_scan_radius;
                }
                const NumericSolution solution =
                    optimize_pattern(kind, point.params, opts);
                cell.segments_n = solution.segments_n;
                cell.chunks_m = solution.chunks_m;
                cell.work = solution.pattern.work();
                cell.overhead = solution.overhead;
                cell.warm_started = warm;
              }
            }

            if (options_.numeric_optimum) {
              if (std::isfinite(cell.overhead)) {
                warm_n = cell.segments_n;
                warm_m = cell.chunks_m;
                warm_work = cell.work;
                have_warm = true;
              } else {
                have_warm = false;  // degenerate point; reseed the next cold
              }
            }

            if (sink != nullptr) {
              const std::lock_guard<std::mutex> lock(sink_mutex);
              sink->on_cell(cell);
            }
          }
        }
      },
      /*grain=*/1);  // chains are heavyweight; one ticket each
  if (aborted.load(std::memory_order_relaxed) || options_.cancel.cancelled()) {
    throw SweepCancelled(options_.cancel.deadline_expired());
  }
  return table;
}

}  // namespace resilience::core
