#include "resilience/core/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "resilience/core/expected_time.hpp"
#include "resilience/util/thread_pool.hpp"

namespace resilience::core {

namespace {

/// Implicit single-element axes: an empty axis means "platform default".
std::size_t axis_size(std::size_t declared) noexcept {
  return declared == 0 ? 1 : declared;
}

}  // namespace

std::size_t ScenarioGrid::point_count() const noexcept {
  return platforms.size() * axis_size(node_counts.size()) *
         axis_size(rate_factors.size()) * axis_size(cost_overrides.size());
}

std::size_t ScenarioGrid::cell_count() const {
  return point_count() * resolved_kinds().size();
}

std::vector<PatternKind> ScenarioGrid::resolved_kinds() const {
  return kinds.empty() ? all_pattern_kinds() : kinds;
}

std::vector<ScenarioPoint> resolve_points(const ScenarioGrid& grid) {
  if (grid.platforms.empty()) {
    throw std::invalid_argument("ScenarioGrid: need at least one platform");
  }
  const std::size_t nodes_n = axis_size(grid.node_counts.size());
  const std::size_t rates_n = axis_size(grid.rate_factors.size());
  const std::size_t costs_n = axis_size(grid.cost_overrides.size());

  std::vector<ScenarioPoint> points;
  points.reserve(grid.platforms.size() * nodes_n * rates_n * costs_n);
  for (std::size_t ip = 0; ip < grid.platforms.size(); ++ip) {
    for (std::size_t in = 0; in < nodes_n; ++in) {
      for (std::size_t ir = 0; ir < rates_n; ++ir) {
        for (std::size_t ic = 0; ic < costs_n; ++ic) {
          ScenarioPoint point;
          point.platform_index = ip;
          point.node_index = in;
          point.rate_index = ir;
          point.cost_index = ic;
          Platform platform = grid.platforms[ip];
          if (!grid.node_counts.empty()) {
            platform = platform.scaled_to(grid.node_counts[in]);
          }
          if (!grid.rate_factors.empty()) {
            const RateFactors& f = grid.rate_factors[ir];
            platform = platform.with_rate_factors(f.fail_stop, f.silent);
          }
          if (!grid.cost_overrides.empty()) {
            const CostOverride& o = grid.cost_overrides[ic];
            if (o.disk_checkpoint >= 0.0) {
              platform = platform.with_disk_checkpoint(o.disk_checkpoint);
            }
          }
          point.platform = platform;
          point.params = platform.model_params();
          if (!grid.cost_overrides.empty()) {
            const CostOverride& o = grid.cost_overrides[ic];
            if (o.partial_verification >= 0.0) {
              point.params.costs.partial_verification = o.partial_verification;
            }
            if (o.recall >= 0.0) {
              point.params.costs.recall = o.recall;
            }
            point.params.validate();
          }
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

const SweepCell& SweepTable::cell(std::size_t point_index, PatternKind kind) const {
  const auto it = std::find(kinds.begin(), kinds.end(), kind);
  if (point_index >= points.size() || it == kinds.end()) {
    throw std::out_of_range("SweepTable::cell: no such point/family");
  }
  return cells[point_index * kinds.size() +
               static_cast<std::size_t>(it - kinds.begin())];
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

SweepTable SweepRunner::run(const ScenarioGrid& grid) const {
  SweepTable table;
  table.points = resolve_points(grid);
  table.kinds = grid.resolved_kinds();  // never empty: defaults to all six
  table.cells.assign(table.points.size() * table.kinds.size(), SweepCell{});

  const std::size_t nodes_n = axis_size(grid.node_counts.size());
  const std::size_t rates_n = axis_size(grid.rate_factors.size());
  const std::size_t costs_n = axis_size(grid.cost_overrides.size());
  const std::size_t kinds_n = table.kinds.size();

  // Chains: fixed (platform, cost override, family), walking node counts
  // (outer) then rate factors (inner). Each chain is one pool task writing
  // only its own cells, so the table is bit-identical at any pool size.
  const std::size_t chain_count = grid.platforms.size() * costs_n * kinds_n;

  // Inner optimizations must not fan out on the pool the chains already
  // occupy (parallel_for does not nest).
  OptimizerOptions cold = options_.optimizer;
  cold.serial_cells = true;
  cold.seed_segments_n = 0;
  cold.seed_chunks_m = 0;
  cold.work_hint = 0.0;

  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::global_pool();
  pool.parallel_for(
      chain_count,
      [&](std::size_t chain) {
        const std::size_t ip = chain / (costs_n * kinds_n);
        const std::size_t ic = (chain / kinds_n) % costs_n;
        const std::size_t ik = chain % kinds_n;
        const PatternKind kind = table.kinds[ik];

        ExactEvaluator evaluator(table.points.front().params,
                                 cold.evaluation);  // arena reused chain-wide

        bool have_warm = false;
        std::size_t warm_n = 1;
        std::size_t warm_m = 1;
        double warm_work = 0.0;
        for (std::size_t in = 0; in < nodes_n; ++in) {
          for (std::size_t ir = 0; ir < rates_n; ++ir) {
            const std::size_t point_index =
                ((ip * nodes_n + in) * rates_n + ir) * costs_n + ic;
            const ScenarioPoint& point = table.points[point_index];
            SweepCell& cell = table.cells[point_index * kinds_n + ik];
            cell.point_index = point_index;
            cell.kind = kind;

            cell.first_order = solve_first_order(kind, point.params);
            evaluator.reset(point.params, cold.evaluation);
            try {
              cell.exact_at_first_order =
                  evaluator
                      .evaluate(cell.first_order.to_pattern(
                          point.params.costs.recall))
                      .overhead;
            } catch (const std::domain_error&) {
              cell.exact_at_first_order =
                  std::numeric_limits<double>::infinity();
            }

            if (!options_.numeric_optimum) {
              continue;  // first-order/exact columns only
            }
            OptimizerOptions opts = cold;
            const bool warm = options_.warm_start && have_warm;
            if (warm) {
              opts.seed_segments_n = warm_n;
              opts.seed_chunks_m = warm_m;
              opts.work_hint = warm_work;
              opts.scan_radius = options_.warm_scan_radius;
            }
            const NumericSolution solution =
                optimize_pattern(kind, point.params, opts);
            cell.segments_n = solution.segments_n;
            cell.chunks_m = solution.chunks_m;
            cell.work = solution.pattern.work();
            cell.overhead = solution.overhead;
            cell.warm_started = warm;

            if (std::isfinite(solution.overhead)) {
              warm_n = solution.segments_n;
              warm_m = solution.chunks_m;
              warm_work = solution.pattern.work();
              have_warm = true;
            } else {
              have_warm = false;  // degenerate point; reseed the next cold
            }
          }
        }
      },
      /*grain=*/1);  // chains are heavyweight; one ticket each
  return table;
}

}  // namespace resilience::core
