#include "resilience/core/expected_time.hpp"

#include <cmath>
#include <stdexcept>

namespace resilience::core {

namespace {

/// Per-segment attempt statistics needed by the linear solve of Eq. (23).
struct SegmentAttempt {
  double success_probability = 0.0;  ///< no fail-stop AND no silent error
  double fail_stop_probability = 0.0;  ///< some chunk interrupted (disjoint union)
  double expected_attempt_time = 0.0;  ///< chunk work/verifs + truncated losses
};

/// Computes the attempt statistics of one segment. `q_j`, the probability
/// that chunk j actually runs within the attempt, follows the paper's
/// detection-chain expression: no fail-stop before j, and either no silent
/// error so far or every partial verification since the (first) silent
/// error missed it, each independently with probability (1 - r).
SegmentAttempt analyze_segment(const PatternSpec& pattern, std::size_t segment_index,
                               const ModelParams& params,
                               const EvaluationOptions& options) {
  const auto& segment = pattern.segment(segment_index);
  const std::size_t m = segment.chunks();
  const double lambda_f = params.rates.fail_stop;
  const double lambda_s = params.rates.silent;
  // P_DV*/P_DMV* patterns interleave guaranteed verifications (cost V*,
  // recall 1) between chunks instead of partial ones.
  const double intermediate_cost = pattern.guaranteed_intermediates()
                                       ? params.costs.guaranteed_verification
                                       : params.costs.partial_verification;
  const double recall =
      pattern.guaranteed_intermediates() ? 1.0 : params.costs.recall;

  SegmentAttempt attempt;

  // Running products/sums for the detection chain.
  double no_fail_prefix = 1.0;    // prod_{k<j} (1 - pf_k)
  double no_silent_prefix = 1.0;  // prod_{k<j} (1 - ps_k)
  double missed_probability = 0.0;  // g_j: silent occurred, all verifs missed

  double success = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double w = pattern.chunk_work(segment_index, j);
    const double verif_cost =
        (j + 1 == m) ? params.costs.guaranteed_verification : intermediate_cost;
    const double fail_window = options.faulty_verifications ? w + verif_cost : w;
    const double pf = error_probability(lambda_f, fail_window);
    const double ps = error_probability(lambda_s, w);

    const double q = no_fail_prefix * (no_silent_prefix + missed_probability);

    attempt.fail_stop_probability += q * pf;
    attempt.expected_attempt_time +=
        q * (pf * expected_time_lost(lambda_f, fail_window) +
             (1.0 - pf) * (w + verif_cost));
    success *= (1.0 - pf) * (1.0 - ps);

    // Advance the chain past chunk j's verification: previously missed
    // corruption survives with probability (1 - r); a fresh silent error in
    // chunk j joins the missed pool with probability ps * (1 - r). The
    // final guaranteed verification never misses, but the chain value past
    // the last chunk is unused, so updating unconditionally is harmless.
    missed_probability =
        (missed_probability + no_silent_prefix * ps) * (1.0 - recall);
    no_silent_prefix *= (1.0 - ps);
    no_fail_prefix *= (1.0 - pf);
  }
  attempt.success_probability = success;
  return attempt;
}

}  // namespace

ExpectedTime evaluate_pattern(const PatternSpec& pattern, const ModelParams& params,
                              const EvaluationOptions& options) {
  params.validate();
  if (params.rates.fail_stop <= 0.0 && params.rates.silent <= 0.0 &&
      options.faulty_operations) {
    // No errors means raw costs already; fall through with raw costs.
  }

  CostParams costs = params.costs;
  ModelParams effective = params;

  // Fixed-point on T_rec when Section-5 operation faults are enabled: start
  // from the raw costs, evaluate, plug E(P) in as the re-execution bound,
  // re-evaluate. Converges in a couple of iterations because the
  // correction is O(lambda * T_rec).
  const int refinement_rounds = options.faulty_operations ? 4 : 1;

  ExpectedTime result;
  double reexecution_estimate = 0.0;
  for (int round = 0; round < refinement_rounds; ++round) {
    if (options.faulty_operations && round > 0) {
      const OperationCosts op = expected_operation_costs(params, reexecution_estimate);
      costs = params.costs;
      costs.disk_checkpoint = op.disk_checkpoint;
      costs.memory_checkpoint = op.memory_checkpoint;
      costs.disk_recovery = op.disk_recovery;
      costs.memory_recovery = op.memory_recovery;
    }
    effective.costs = costs;

    const std::size_t n = pattern.segment_count();
    std::vector<double> segment_expectations(n, 0.0);
    double prefix_sum = 0.0;  // sum_{k<i} E_k
    for (std::size_t i = 0; i < n; ++i) {
      const SegmentAttempt attempt =
          analyze_segment(pattern, i, effective, options);
      const double p_success = attempt.success_probability;
      if (!(p_success > 0.0)) {
        throw std::domain_error(
            "evaluate_pattern: segment success probability underflows; the "
            "pattern is far too long for these error rates");
      }
      // Linear solve of Eq. (23):
      //   E_i = A_i + Pf_i (R_D + sum_{k<i} E_k)
      //       + (1 - P_succ)(R_M + E_i) + P_succ C_M.
      const double numerator =
          attempt.expected_attempt_time +
          attempt.fail_stop_probability *
              (effective.costs.disk_recovery + prefix_sum) +
          (1.0 - p_success) * effective.costs.memory_recovery +
          p_success * effective.costs.memory_checkpoint;
      const double e_i = numerator / p_success;
      segment_expectations[i] = e_i;
      prefix_sum += e_i;
    }

    result.segment_expectations = std::move(segment_expectations);
    result.total = prefix_sum + effective.costs.disk_checkpoint;
    result.overhead = result.total / pattern.work() - 1.0;
    reexecution_estimate = result.total;
  }
  return result;
}

double evaluate_base_pattern_closed_form(double work, const ModelParams& params) {
  params.validate();
  const double lf = params.rates.fail_stop;
  const double ls = params.rates.silent;
  const CostParams& c = params.costs;

  // Proof of Proposition 1 (exact, before first-order truncation):
  //   E(P) = (e^{(lf+ls)W} - e^{ls W})/lf - W e^{ls W} + e^{ls W}(W + V*)
  //        + C_D + C_M + (e^{(lf+ls)W} - e^{ls W}) R_D
  //        + (e^{(lf+ls)W} - 1) R_M.
  // The lf -> 0 limit of the first term is W e^{ls W}; computing it as
  // e^{ls W} * expm1(lf W)/lf keeps that limit stable.
  const double exp_ls = std::exp(ls * work);
  const double fail_factor =
      lf > 0.0 ? exp_ls * std::expm1(lf * work) / lf : work * exp_ls;
  const double exp_both_minus_exp_ls = lf > 0.0 ? exp_ls * std::expm1(lf * work) : 0.0;
  const double exp_both_minus_one = std::expm1((lf + ls) * work);

  return fail_factor - work * exp_ls + exp_ls * (work + c.guaranteed_verification) +
         c.disk_checkpoint + c.memory_checkpoint +
         exp_both_minus_exp_ls * c.disk_recovery +
         exp_both_minus_one * c.memory_recovery;
}

double segment_quadratic_form(const std::vector<double>& beta, double recall) {
  if (beta.empty()) {
    throw std::invalid_argument("segment_quadratic_form: empty chunk vector");
  }
  if (!(recall > 0.0) || recall > 1.0) {
    throw std::invalid_argument("segment_quadratic_form: recall must be in (0, 1]");
  }
  const std::size_t m = beta.size();
  double value = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto distance = static_cast<double>(i > j ? i - j : j - i);
      const double a_ij = 0.5 * (1.0 + std::pow(1.0 - recall, distance));
      value += beta[i] * a_ij * beta[j];
    }
  }
  return value;
}

double evaluate_pattern_second_order(const PatternSpec& pattern,
                                     const ModelParams& params) {
  params.validate();
  const CostParams& c = params.costs;
  const double w = pattern.work();

  const double intermediate_cost = pattern.guaranteed_intermediates()
                                       ? c.guaranteed_verification
                                       : c.partial_verification;
  const double recall = pattern.guaranteed_intermediates() ? 1.0 : c.recall;

  double error_free = c.disk_checkpoint;
  double silent_factor = 0.0;  // sum_i beta_i^T A beta_i * alpha_i^2
  for (std::size_t i = 0; i < pattern.segment_count(); ++i) {
    const auto& segment = pattern.segment(i);
    error_free += static_cast<double>(segment.chunks() - 1) * intermediate_cost +
                  c.guaranteed_verification + c.memory_checkpoint;
    silent_factor +=
        segment_quadratic_form(segment.beta, recall) * segment.alpha * segment.alpha;
  }
  // Proposition 4, Eq. (22).
  return w + error_free +
         (params.rates.silent * silent_factor + params.rates.fail_stop / 2.0) * w * w;
}

OperationCosts expected_operation_costs(const ModelParams& params,
                                        double reexecution_time) {
  params.validate();
  const double lf = params.rates.fail_stop;
  const CostParams& c = params.costs;

  const auto expected_cost = [&](double raw, double extra_on_failure) {
    const double pf = error_probability(lf, raw);
    if (pf >= 1.0) {
      throw std::domain_error("expected_operation_costs: operation never completes");
    }
    // Solve E = pf (T_lost + extra + E) + (1 - pf) raw for E.
    const double t_lost = expected_time_lost(lf, raw);
    return (pf * (t_lost + extra_on_failure) + (1.0 - pf) * raw) / (1.0 - pf);
  };

  OperationCosts out;
  // Eq. (30): disk recovery retries by itself.
  out.disk_recovery = expected_cost(c.disk_recovery, 0.0);
  // Eq. (31): memory recovery failure forces a disk recovery plus a pattern
  // re-execution before retrying.
  out.memory_recovery =
      expected_cost(c.memory_recovery, out.disk_recovery + reexecution_time);
  // Eq. (33): memory checkpoint failure: recover both levels, re-execute.
  out.memory_checkpoint = expected_cost(
      c.memory_checkpoint, out.disk_recovery + out.memory_recovery + reexecution_time);
  // Eq. (32): disk checkpoint failure additionally re-takes the memory
  // checkpoint before retrying.
  out.disk_checkpoint =
      expected_cost(c.disk_checkpoint, out.disk_recovery + out.memory_recovery +
                                           reexecution_time + out.memory_checkpoint);
  return out;
}

}  // namespace resilience::core
