#include "resilience/core/expected_time.hpp"

#include <cmath>
#include <stdexcept>

namespace resilience::core {

// --------------------------------------------------------- ExactEvaluator --

ExactEvaluator::ExactEvaluator(const ModelParams& params,
                               const EvaluationOptions& options) {
  reset(params, options);
}

void ExactEvaluator::reset(const ModelParams& params,
                           const EvaluationOptions& options) {
  params.validate();
  params_ = params;
  options_ = options;
  shape_bound_ = false;
  hoist_operation_invariants();
}

void ExactEvaluator::hoist_operation_invariants() {
  const double lambda_f = params_.rates.fail_stop;
  const auto invariant = [&](double raw) {
    OperationInvariant op;
    op.raw = raw;
    op.fail_probability = error_probability(lambda_f, raw);
    op.expected_lost = expected_time_lost(lambda_f, raw);
    return op;
  };
  op_disk_checkpoint_ = invariant(params_.costs.disk_checkpoint);
  op_memory_checkpoint_ = invariant(params_.costs.memory_checkpoint);
  op_disk_recovery_ = invariant(params_.costs.disk_recovery);
  op_memory_recovery_ = invariant(params_.costs.memory_recovery);
}

double ExactEvaluator::solve_operation(const OperationInvariant& op,
                                       double extra_on_failure) {
  const double pf = op.fail_probability;
  if (pf >= 1.0) {
    throw std::domain_error(
        "operation_costs: resilience operation never completes (its duration "
        "saturates the fail-stop window)");
  }
  return (pf * (op.expected_lost + extra_on_failure) + (1.0 - pf) * op.raw) /
         (1.0 - pf);
}

OperationCosts ExactEvaluator::operation_costs(double reexecution) const {
  OperationCosts out;
  // Eq. (30): disk recovery retries by itself.
  out.disk_recovery = solve_operation(op_disk_recovery_, 0.0);
  // Eq. (31): memory recovery failure forces a disk recovery plus a pattern
  // re-execution before retrying.
  out.memory_recovery =
      solve_operation(op_memory_recovery_, out.disk_recovery + reexecution);
  // Eq. (33): memory checkpoint failure: recover both levels, re-execute.
  out.memory_checkpoint = solve_operation(
      op_memory_checkpoint_,
      out.disk_recovery + out.memory_recovery + reexecution);
  // Eq. (32): disk checkpoint failure additionally re-takes the memory
  // checkpoint before retrying.
  out.disk_checkpoint = solve_operation(
      op_disk_checkpoint_, out.disk_recovery + out.memory_recovery + reexecution +
                               out.memory_checkpoint);
  return out;
}

void ExactEvaluator::bind(const PatternSpec& pattern) {
  // P_DV*/P_DMV* patterns interleave guaranteed verifications (cost V*,
  // recall 1) between chunks instead of partial ones.
  const double intermediate_cost = pattern.guaranteed_intermediates()
                                       ? params_.costs.guaranteed_verification
                                       : params_.costs.partial_verification;
  recall_ = pattern.guaranteed_intermediates() ? 1.0 : params_.costs.recall;

  classes_.clear();
  chunk_class_of_.clear();
  segments_.clear();

  const std::size_t n = pattern.segment_count();
  for (std::size_t i = 0; i < n; ++i) {
    const SegmentSpec& spec = pattern.segment(i);
    const std::size_t m = spec.chunks();
    BoundSegment segment;
    segment.first_chunk = chunk_class_of_.size();
    segment.chunk_count = m;
    segment.representative = i;
    for (std::size_t j = 0; j < m; ++j) {
      const double fraction = spec.alpha * spec.beta[j];
      const double verif_cost = (j + 1 == m)
                                    ? params_.costs.guaranteed_verification
                                    : intermediate_cost;
      // Canonical patterns collapse to a handful of classes, making the
      // linear dedup scan cheap. Heterogeneous patterns (irregular
      // optimizer) produce a distinct class per chunk; once the class
      // table outgrows the dedup payoff, append without scanning so bind
      // stays O(n*m) instead of O((n*m)^2).
      constexpr std::size_t kMaxDedupClasses = 16;
      std::uint32_t cls = static_cast<std::uint32_t>(classes_.size());
      if (classes_.size() <= kMaxDedupClasses) {
        for (cls = 0; cls < classes_.size(); ++cls) {
          if (classes_[cls].fraction == fraction &&
              classes_[cls].verif_cost == verif_cost) {
            break;
          }
        }
      }
      if (cls == classes_.size()) {
        ChunkClass fresh;
        fresh.fraction = fraction;
        fresh.verif_cost = verif_cost;
        classes_.push_back(fresh);
      }
      chunk_class_of_.push_back(cls);
    }
    // Identical-segment grouping: a segment whose class sequence matches an
    // earlier representative reuses that segment's attempt statistics. The
    // canonical patterns have n equal segments, collapsing the per-probe
    // chain walk from O(n*m) to O(m).
    for (std::size_t k = 0; k < i; ++k) {
      const BoundSegment& other = segments_[k];
      if (other.representative != k || other.chunk_count != m) {
        continue;
      }
      bool same = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (chunk_class_of_[other.first_chunk + j] !=
            chunk_class_of_[segment.first_chunk + j]) {
          same = false;
          break;
        }
      }
      if (same) {
        segment.representative = k;
        break;
      }
    }
    segments_.push_back(segment);
  }

  attempts_.assign(n, SegmentAttempt{});
  result_.segment_expectations.assign(n, 0.0);
  shape_bound_ = true;
}

void ExactEvaluator::bind_canonical(PatternKind kind, std::size_t segments_n,
                                    std::size_t chunks_m) {
  // The fractions of the canonical pattern do not depend on W; bind at a
  // placeholder work of 1 and probe real W values through evaluate_at().
  bind(make_pattern(kind, 1.0, segments_n, chunks_m, params_.costs.recall));
}

ExactEvaluator::SegmentAttempt ExactEvaluator::analyze_segment(
    const BoundSegment& segment) const {
  // `q_j`, the probability that chunk j actually runs within the attempt,
  // follows the paper's detection-chain expression: no fail-stop before j,
  // and either no silent error so far or every partial verification since
  // the (first) silent error missed it, each independently with
  // probability (1 - r).
  SegmentAttempt attempt;

  double no_fail_prefix = 1.0;    // prod_{k<j} (1 - pf_k)
  double no_silent_prefix = 1.0;  // prod_{k<j} (1 - ps_k)
  double missed_probability = 0.0;  // g_j: silent occurred, all verifs missed

  double success = 1.0;
  for (std::size_t j = 0; j < segment.chunk_count; ++j) {
    const ChunkClass& cls =
        classes_[chunk_class_of_[segment.first_chunk + j]];
    const double q = no_fail_prefix * (no_silent_prefix + missed_probability);

    attempt.fail_stop_probability += q * cls.fail_probability;
    attempt.expected_attempt_time +=
        q * (cls.fail_probability * cls.expected_lost +
             (1.0 - cls.fail_probability) * (cls.work + cls.verif_cost));
    success *= (1.0 - cls.fail_probability) * (1.0 - cls.silent_probability);

    // Advance the chain past chunk j's verification: previously missed
    // corruption survives with probability (1 - r); a fresh silent error in
    // chunk j joins the missed pool with probability ps * (1 - r). The
    // final guaranteed verification never misses, but the chain value past
    // the last chunk is unused, so updating unconditionally is harmless.
    missed_probability =
        (missed_probability + no_silent_prefix * cls.silent_probability) *
        (1.0 - recall_);
    no_silent_prefix *= (1.0 - cls.silent_probability);
    no_fail_prefix *= (1.0 - cls.fail_probability);
  }
  attempt.success_probability = success;
  return attempt;
}

const ExpectedTime& ExactEvaluator::evaluate_at(double work) {
  if (!shape_bound_) {
    throw std::logic_error("ExactEvaluator: no pattern shape bound");
  }
  if (!(work > 0.0) || !std::isfinite(work)) {
    throw std::domain_error("ExactEvaluator: work must be positive and finite");
  }

  // W-dependent chunk statistics, once per distinct chunk class.
  const double lambda_f = params_.rates.fail_stop;
  const double lambda_s = params_.rates.silent;
  for (ChunkClass& cls : classes_) {
    cls.work = cls.fraction * work;
    const double fail_window =
        options_.faulty_verifications ? cls.work + cls.verif_cost : cls.work;
    cls.fail_probability = error_probability(lambda_f, fail_window);
    cls.silent_probability = error_probability(lambda_s, cls.work);
    cls.expected_lost = expected_time_lost(lambda_f, fail_window);
  }

  // Attempt statistics per representative segment; duplicates copy. These
  // depend only on rates and verification costs, never on the effective
  // checkpoint/recovery costs, so they stay fixed across the Section-5
  // fixed-point rounds below.
  const std::size_t n = segments_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const BoundSegment& segment = segments_[i];
    if (segment.representative == i) {
      attempts_[i] = analyze_segment(segment);
      if (!(attempts_[i].success_probability > 0.0)) {
        throw std::domain_error(
            "evaluate_pattern: segment success probability underflows; the "
            "pattern is far too long for these error rates");
      }
    } else {
      attempts_[i] = attempts_[segment.representative];
    }
  }

  // Fixed-point on T_rec when Section-5 operation faults are enabled: start
  // from the raw costs, evaluate, plug E(P) in as the re-execution bound,
  // re-evaluate. Converges in a couple of iterations because the
  // correction is O(lambda * T_rec).
  const int refinement_rounds = options_.faulty_operations ? 4 : 1;
  double reexecution_estimate = 0.0;
  for (int round = 0; round < refinement_rounds; ++round) {
    OperationCosts costs{params_.costs.disk_checkpoint,
                         params_.costs.memory_checkpoint,
                         params_.costs.disk_recovery,
                         params_.costs.memory_recovery};
    if (options_.faulty_operations && round > 0) {
      costs = operation_costs(reexecution_estimate);
    }

    // Linear solve of Eq. (23):
    //   E_i = A_i + Pf_i (R_D + sum_{k<i} E_k)
    //       + (1 - P_succ)(R_M + E_i) + P_succ C_M.
    double prefix_sum = 0.0;  // sum_{k<i} E_k
    for (std::size_t i = 0; i < n; ++i) {
      const SegmentAttempt& attempt = attempts_[i];
      const double numerator =
          attempt.expected_attempt_time +
          attempt.fail_stop_probability * (costs.disk_recovery + prefix_sum) +
          (1.0 - attempt.success_probability) * costs.memory_recovery +
          attempt.success_probability * costs.memory_checkpoint;
      const double e_i = numerator / attempt.success_probability;
      result_.segment_expectations[i] = e_i;
      prefix_sum += e_i;
    }
    result_.total = prefix_sum + costs.disk_checkpoint;
    result_.overhead = result_.total / work - 1.0;
    reexecution_estimate = result_.total;
  }
  return result_;
}

const ExpectedTime& ExactEvaluator::evaluate(const PatternSpec& pattern) {
  bind(pattern);
  return evaluate_at(pattern.work());
}

// ----------------------------------------------------------- free helpers --

ExpectedTime evaluate_pattern(const PatternSpec& pattern, const ModelParams& params,
                              const EvaluationOptions& options) {
  ExactEvaluator evaluator(params, options);
  return evaluator.evaluate(pattern);
}

double evaluate_base_pattern_closed_form(double work, const ModelParams& params) {
  params.validate();
  const double lf = params.rates.fail_stop;
  const double ls = params.rates.silent;
  const CostParams& c = params.costs;

  // Proof of Proposition 1 (exact, before first-order truncation):
  //   E(P) = (e^{(lf+ls)W} - e^{ls W})/lf - W e^{ls W} + e^{ls W}(W + V*)
  //        + C_D + C_M + (e^{(lf+ls)W} - e^{ls W}) R_D
  //        + (e^{(lf+ls)W} - 1) R_M.
  // The lf -> 0 limit of the first term is W e^{ls W}; computing it as
  // e^{ls W} * expm1(lf W)/lf keeps that limit stable.
  const double exp_ls = std::exp(ls * work);
  const double fail_factor =
      lf > 0.0 ? exp_ls * std::expm1(lf * work) / lf : work * exp_ls;
  const double exp_both_minus_exp_ls = lf > 0.0 ? exp_ls * std::expm1(lf * work) : 0.0;
  const double exp_both_minus_one = std::expm1((lf + ls) * work);

  return fail_factor - work * exp_ls + exp_ls * (work + c.guaranteed_verification) +
         c.disk_checkpoint + c.memory_checkpoint +
         exp_both_minus_exp_ls * c.disk_recovery +
         exp_both_minus_one * c.memory_recovery;
}

namespace {

void validate_quadratic_form_input(const std::vector<double>& beta, double recall) {
  if (beta.empty()) {
    throw std::invalid_argument("segment_quadratic_form: empty chunk vector");
  }
  if (!(recall > 0.0) || recall > 1.0) {
    throw std::invalid_argument("segment_quadratic_form: recall must be in (0, 1]");
  }
}

}  // namespace

double segment_quadratic_form(const std::vector<double>& beta, double recall) {
  validate_quadratic_form_input(beta, recall);
  // With q = 1 - r and S = sum_i beta_i,
  //   beta^T A beta = (S^2 + sum_{i,j} beta_i beta_j q^{|i-j|}) / 2,
  // and the decayed cross term folds into the O(m) recurrence
  //   t_j = (t_{j-1} + beta_{j-1}) q  =>  sum_j beta_j (beta_j + 2 t_j).
  const double q = 1.0 - recall;
  double total = 0.0;    // S
  double decayed = 0.0;  // t_j = sum_{i<j} beta_i q^{j-i}
  double cross = 0.0;    // sum_j beta_j (beta_j + 2 t_j)
  for (std::size_t j = 0; j < beta.size(); ++j) {
    if (j > 0) {
      decayed = (decayed + beta[j - 1]) * q;
    }
    cross += beta[j] * (beta[j] + 2.0 * decayed);
    total += beta[j];
  }
  return 0.5 * (total * total + cross);
}

double segment_quadratic_form_reference(const std::vector<double>& beta,
                                        double recall) {
  validate_quadratic_form_input(beta, recall);
  const std::size_t m = beta.size();
  double value = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto distance = static_cast<double>(i > j ? i - j : j - i);
      const double a_ij = 0.5 * (1.0 + std::pow(1.0 - recall, distance));
      value += beta[i] * a_ij * beta[j];
    }
  }
  return value;
}

double evaluate_pattern_second_order(const PatternSpec& pattern,
                                     const ModelParams& params) {
  params.validate();
  const CostParams& c = params.costs;
  const double w = pattern.work();

  const double intermediate_cost = pattern.guaranteed_intermediates()
                                       ? c.guaranteed_verification
                                       : c.partial_verification;
  const double recall = pattern.guaranteed_intermediates() ? 1.0 : c.recall;

  double error_free = c.disk_checkpoint;
  double silent_factor = 0.0;  // sum_i beta_i^T A beta_i * alpha_i^2
  for (std::size_t i = 0; i < pattern.segment_count(); ++i) {
    const auto& segment = pattern.segment(i);
    error_free += static_cast<double>(segment.chunks() - 1) * intermediate_cost +
                  c.guaranteed_verification + c.memory_checkpoint;
    silent_factor +=
        segment_quadratic_form(segment.beta, recall) * segment.alpha * segment.alpha;
  }
  // Proposition 4, Eq. (22).
  return w + error_free +
         (params.rates.silent * silent_factor + params.rates.fail_stop / 2.0) * w * w;
}

OperationCosts expected_operation_costs(const ModelParams& params,
                                        double reexecution_time) {
  return ExactEvaluator(params).operation_costs(reexecution_time);
}

}  // namespace resilience::core
