#include "resilience/core/irregular.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "resilience/core/first_order.hpp"

namespace resilience::core {

namespace {

/// Minimized silent re-execution factor of a segment with m chunks sized by
/// Eq. (18): f*(m) = (1 + (2-r)/((m-2)r + 2)) / 2.
double optimal_segment_factor(std::size_t chunks, double recall) {
  const auto m = static_cast<double>(chunks);
  return 0.5 * (1.0 + (2.0 - recall) / ((m - 2.0) * recall + 2.0));
}

/// Exact overhead of a heterogeneous shape after optimizing W by golden
/// section. Returns +inf for shapes the evaluator rejects.
double shape_overhead(const std::vector<std::size_t>& chunk_counts, double recall,
                      const ModelParams& params, const OptimizerOptions& options,
                      double* best_work) {
  // Bracket around a crude analytic period estimate derived from the
  // homogeneous formulas with the mean chunk count.
  const double mean_m =
      std::accumulate(chunk_counts.begin(), chunk_counts.end(), 0.0) /
      static_cast<double>(chunk_counts.size());
  const auto seed_coefficients = overhead_coefficients(
      PatternKind::kDMV, params, chunk_counts.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(mean_m))));
  const double seed_work = seed_coefficients.optimal_work();
  const double lo = std::max(options.work_lo, seed_work / 50.0);
  const double hi = std::min(options.work_hi, seed_work * 50.0);

  const auto objective = [&](double work) {
    try {
      const PatternSpec pattern = make_irregular_pattern(work, chunk_counts, recall);
      return evaluate_pattern(pattern, params, options.evaluation).overhead;
    } catch (const std::domain_error&) {
      return std::numeric_limits<double>::infinity();
    }
  };
  const double work =
      golden_section_minimize(objective, lo, hi, options.work_tolerance);
  if (best_work != nullptr) {
    *best_work = work;
  }
  return objective(work);
}

}  // namespace

std::vector<double> optimal_segment_fractions(
    const std::vector<std::size_t>& chunk_counts, double recall) {
  if (chunk_counts.empty()) {
    throw std::invalid_argument("optimal_segment_fractions: no segments");
  }
  if (!(recall > 0.0) || recall > 1.0) {
    throw std::invalid_argument("optimal_segment_fractions: recall in (0, 1]");
  }
  // Theorem 4 inner minimization: minimizing sum_i f*_i alpha_i^2 subject to
  // sum alpha_i = 1 gives alpha_i proportional to 1/f*_i.
  std::vector<double> inverse(chunk_counts.size());
  for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
    if (chunk_counts[i] == 0) {
      throw std::invalid_argument("optimal_segment_fractions: zero chunk count");
    }
    inverse[i] = 1.0 / optimal_segment_factor(chunk_counts[i], recall);
  }
  const double total = std::accumulate(inverse.begin(), inverse.end(), 0.0);
  for (double& value : inverse) {
    value /= total;
  }
  return inverse;
}

PatternSpec make_irregular_pattern(double work,
                                   const std::vector<std::size_t>& chunk_counts,
                                   double recall) {
  const std::vector<double> alpha = optimal_segment_fractions(chunk_counts, recall);
  std::vector<SegmentSpec> segments(chunk_counts.size());
  for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
    segments[i].alpha = alpha[i];
    segments[i].beta = optimal_chunk_fractions(chunk_counts[i], recall);
  }
  return PatternSpec(work, std::move(segments));
}

PatternSpec random_pattern(util::Xoshiro256& rng, double work,
                           std::size_t max_segments, std::size_t max_chunks) {
  if (max_segments == 0 || max_chunks == 0) {
    throw std::invalid_argument("random_pattern: empty shape space");
  }
  const std::size_t n = 1 + util::uniform_below(rng, max_segments);
  std::vector<SegmentSpec> segments(n);
  // Random positive fractions, normalized; floor keeps them bounded away
  // from zero so the spec validates.
  double alpha_sum = 0.0;
  for (auto& segment : segments) {
    segment.alpha = 0.05 + util::uniform01(rng);
    alpha_sum += segment.alpha;
    const std::size_t m = 1 + util::uniform_below(rng, max_chunks);
    segment.beta.resize(m);
    double beta_sum = 0.0;
    for (double& b : segment.beta) {
      b = 0.05 + util::uniform01(rng);
      beta_sum += b;
    }
    for (double& b : segment.beta) {
      b /= beta_sum;
    }
  }
  for (auto& segment : segments) {
    segment.alpha /= alpha_sum;
  }
  return PatternSpec(work, std::move(segments));
}

IrregularSolution optimize_irregular(const ModelParams& params,
                                     const OptimizerOptions& options) {
  params.validate();
  const double recall = params.costs.recall;

  // Seed from the homogeneous first-order optimum.
  const FirstOrderSolution seed = solve_first_order(PatternKind::kDMV, params);
  std::vector<std::size_t> shape(
      std::min<std::size_t>(seed.segments_n, options.max_segments),
      std::max<std::size_t>(1, seed.chunks_m));

  double best_work = 0.0;
  double best = shape_overhead(shape, recall, params, options, &best_work);

  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<std::vector<std::size_t>> candidates;
    // Per-segment chunk-count nudges.
    for (std::size_t i = 0; i < shape.size(); ++i) {
      if (shape[i] + 1 <= options.max_chunks) {
        auto candidate = shape;
        ++candidate[i];
        candidates.push_back(std::move(candidate));
      }
      if (shape[i] > 1) {
        auto candidate = shape;
        --candidate[i];
        candidates.push_back(std::move(candidate));
      }
    }
    // Segment insertion (cloning the last segment) and removal.
    if (shape.size() + 1 <= options.max_segments) {
      auto candidate = shape;
      candidate.push_back(shape.back());
      candidates.push_back(std::move(candidate));
    }
    if (shape.size() > 1) {
      auto candidate = shape;
      candidate.pop_back();
      candidates.push_back(std::move(candidate));
    }

    for (const auto& candidate : candidates) {
      double work = 0.0;
      const double overhead =
          shape_overhead(candidate, recall, params, options, &work);
      if (overhead < best - 1e-12) {
        best = overhead;
        best_work = work;
        shape = candidate;
        improved = true;
        break;  // greedy re-expansion from the improved shape
      }
    }
  }

  IrregularSolution solution{make_irregular_pattern(best_work, shape, recall), best,
                             shape};
  return solution;
}

}  // namespace resilience::core
