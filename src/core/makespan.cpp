#include "resilience/core/makespan.hpp"

#include <cmath>
#include <stdexcept>

namespace resilience::core {

double JobPlan::disk_io_fraction() const noexcept {
  if (expected_makespan <= 0.0) {
    return 0.0;
  }
  return disk_io_seconds / expected_makespan;
}

JobPlan plan_job(double base_time, const FirstOrderSolution& solution,
                 const ModelParams& params) {
  if (!(base_time > 0.0)) {
    throw std::invalid_argument("plan_job: base_time must be positive");
  }
  params.validate();

  const PatternSpec pattern = solution.to_pattern(params.costs.recall);
  const ExpectedTime expected = evaluate_pattern(pattern, params);

  JobPlan plan;
  plan.base_time = base_time;
  plan.expected_overhead = expected.overhead;
  plan.expected_makespan = base_time * (1.0 + expected.overhead);
  plan.pattern_period = solution.work;
  plan.patterns =
      static_cast<std::uint64_t>(std::ceil(base_time / solution.work));
  plan.disk_checkpoints = plan.patterns;
  plan.memory_checkpoints = plan.patterns * solution.segments_n;
  plan.verifications = plan.patterns * solution.segments_n * solution.chunks_m;
  plan.disk_io_seconds =
      static_cast<double>(plan.disk_checkpoints) * params.costs.disk_checkpoint;
  plan.expected_fail_stop_errors = params.rates.fail_stop * plan.expected_makespan;
  plan.expected_silent_errors = params.rates.silent * plan.expected_makespan;
  return plan;
}

JobPlan plan_job(double base_time, PatternKind kind, const ModelParams& params) {
  return plan_job(base_time, solve_first_order(kind, params), params);
}

double efficiency(const PatternSpec& pattern, const ModelParams& params) {
  return 1.0 / (1.0 + evaluate_pattern(pattern, params).overhead);
}

}  // namespace resilience::core
