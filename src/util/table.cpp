#include "resilience/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace resilience::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::kRight);
    alignments_[0] = Align::kLeft;  // first column is typically a label
  }
  if (alignments_.size() != headers_.size()) {
    throw std::invalid_argument("Table: alignment arity mismatch");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << "  ";
      }
      const auto pad = widths[c] - row[c].size();
      if (alignments_[c] == Align::kRight) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

JsonValue Table::to_json() const {
  JsonValue headers = JsonValue::array();
  for (const auto& header : headers_) {
    headers.push_back(header);
  }
  JsonValue rows = JsonValue::array();
  for (const auto& row : rows_) {
    JsonValue cells = JsonValue::array();
    for (const auto& cell : row) {
      cells.push_back(cell);
    }
    rows.push_back(std::move(cells));
  }
  JsonValue out = JsonValue::object();
  out.set("headers", std::move(headers));
  out.set("rows", std::move(rows));
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string format_hours(double seconds, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << seconds / 3600.0 << " h";
  return os.str();
}

}  // namespace resilience::util
