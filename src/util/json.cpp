#include "resilience/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <system_error>

namespace resilience::util {

namespace {

/// Nesting bound for the parser: deep enough for any real request, small
/// enough that hostile input cannot overflow the stack.
constexpr int kMaxDepth = 64;

std::string locate(const std::string& message, std::size_t line,
                   std::size_t column) {
  return message + " at line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

const char* type_name(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  throw JsonError(std::string("expected ") + wanted + ", got " +
                      type_name(got),
                  0, 0, 0);
}

void append_utf8(std::string& out, unsigned code_point) {
  if (code_point < 0x80) {
    out += static_cast<char>(code_point);
  } else if (code_point < 0x800) {
    out += static_cast<char>(0xC0 | (code_point >> 6));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else if (code_point < 0x10000) {
    out += static_cast<char>(0xE0 | (code_point >> 12));
    out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code_point >> 18));
    out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError(locate(message, line, column), pos_, line, column);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting depth exceeds limit");
    }
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid token");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid token");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid token");
      case 'N':
        if (consume_literal("NaN")) {
          return JsonValue(std::numeric_limits<double>::quiet_NaN());
        }
        fail("invalid token");
      case 'I':
        if (consume_literal("Infinity")) {
          return JsonValue(std::numeric_limits<double>::infinity());
        }
        fail("invalid token");
      default:
        if (c == '-' && consume_literal("-Infinity")) {
          return JsonValue(-std::numeric_limits<double>::infinity());
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
          return JsonValue(parse_number());
        }
        fail("invalid token");
    }
  }

  JsonValue parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') {
        fail("expected object key string");
      }
      std::string key = parse_string();
      if (object.find(key) != nullptr) {
        fail("duplicate object key '" + key + "'");
      }
      skip_whitespace();
      if (peek() != ':') {
        fail("expected ':' after object key");
      }
      ++pos_;
      object.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        fail("unterminated escape sequence");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number: expected digit after '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number: expected exponent digit");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // from_chars: locale-independent (strtod honors LC_NUMERIC, which
    // would silently truncate "1.5" under a comma-decimal locale).
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec == std::errc::result_out_of_range) {
      // Grammar-valid but beyond double range; follow strtod semantics
      // (signed zero on underflow, signed infinity on overflow). The
      // token's shape decides which side: a negative exponent or a
      // "0.xxx" mantissa can only underflow, everything else overflows.
      const std::string_view token = text_.substr(start, pos_ - start);
      const bool negative = token.front() == '-';
      const std::size_t exp = token.find_first_of("eE");
      const bool underflow =
          exp != std::string_view::npos
              ? token[exp + 1] == '-'
              : token[negative ? 1 : 0] == '0';
      if (underflow) {
        value = negative ? -0.0 : 0.0;
      } else {
        value = negative ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();
      }
    } else if (result.ec != std::errc()) {
      fail("invalid number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonError::JsonError(const std::string& message, std::size_t offset_in,
                     std::size_t line_in, std::size_t column_in)
    : std::runtime_error(message),
      offset(offset_in),
      line(line_in),
      column(column_in) {}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) type_error("object", type_);
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent) const {
  dump_impl(out, indent, 0);
}

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int level) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) *
                     static_cast<std::size_t>(level),
                 ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_json_number(number_); break;
    case Type::kString: out += json_quote(string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_indent(depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline_indent(depth);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline_indent(depth + 1);
        out += json_quote(object_[i].first);
        out += ':';
        if (indent >= 0) {
          out += ' ';
        }
        object_[i].second.dump_impl(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline_indent(depth);
      }
      out += '}';
      break;
    }
  }
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

std::string format_json_number(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "Infinity" : "-Infinity";
  }
  // to_chars: the shortest representation that round-trips bit-exactly,
  // independent of the process locale (snprintf %g honors LC_NUMERIC and
  // would emit "1,5" under a comma-decimal locale, breaking both the
  // byte-identity guarantee and JSON validity).
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace resilience::util
