#include "resilience/util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace resilience::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_ranges(count, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
  });
}

void ThreadPool::parallel_for_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t chunks = std::min(count, thread_count());
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const std::size_t base = count / chunks;
  const std::size_t remainder = count % chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < remainder ? 1 : 0);
    const std::size_t end = begin + size;
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
    begin = end;
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace resilience::util
