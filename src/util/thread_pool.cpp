#include "resilience/util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>

namespace resilience::util {

namespace {

/// Shared control block of one run_chunked call. Participants claim ticket
/// ranges off `next`; the caller waits until the iteration space is fully
/// claimed AND no claimed range is still executing — not until every
/// enqueued helper got scheduled, so a helper parked behind unrelated queue
/// work never delays completion. Helpers hold the block via shared_ptr, so
/// a straggler that wakes after the caller returned finds `next >= count`
/// and exits without touching anything freed. The user body and its
/// context live on the caller's stack, but they are only dereferenced
/// inside a claimed range, and no range can be claimed once the caller has
/// been released.
struct ChunkJob {
  std::size_t next = 0;  // guarded by mutex; tickets are coarse, so one
  std::size_t in_flight = 0;  // lock per claim is off the critical path
  std::size_t count = 0;
  std::size_t grain = 1;
  void (*fn)(void*, std::size_t, std::size_t) = nullptr;
  void* ctx = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      std::size_t begin = 0;
      std::size_t end = 0;
      {
        const std::lock_guard lock(mutex);
        if (next >= count) {
          return;
        }
        begin = next;
        end = std::min(count, begin + grain);
        next = end;
        ++in_flight;
      }
      std::exception_ptr thrown;
      try {
        fn(ctx, begin, end);
      } catch (...) {
        thrown = std::current_exception();
      }
      {
        const std::lock_guard lock(mutex);
        if (thrown) {
          if (!error) {
            error = thrown;
          }
          next = count;  // cancel unclaimed tickets; running ranges finish
        }
        --in_flight;
        if (next >= count && in_flight == 0) {
          done_cv.notify_one();
        }
      }
      if (thrown) {
        return;
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::run_chunked(std::size_t count, std::size_t grain, RangeFn fn,
                             void* ctx) {
  if (count == 0) {
    return;
  }
  if (grain == 0) {
    // About four tickets per worker: coarse enough to amortize the atomic
    // claim, fine enough to rebalance uneven iteration costs.
    grain = std::max<std::size_t>(1, count / (4 * thread_count()));
  }
  if (count <= grain) {
    fn(ctx, 0, count);  // single ticket: no scheduling at all
    return;
  }

  const auto job = std::make_shared<ChunkJob>();
  job->count = count;
  job->grain = grain;
  job->fn = fn;
  job->ctx = ctx;

  // The caller claims tickets too, so enqueue at most one helper per worker
  // and never more than the remaining tickets.
  const std::size_t tickets = (count + grain - 1) / grain;
  std::size_t helpers = std::min(thread_count(), tickets - 1);
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      helpers = 0;  // pool shutting down: degrade to serial execution
    }
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace([job] { job->drain(); });
    }
  }
  if (helpers > 0) {
    cv_.notify_all();
  }

  job->drain();

  {
    std::unique_lock lock(job->mutex);
    job->done_cv.wait(lock, [&job] {
      return job->next >= job->count && job->in_flight == 0;
    });
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace resilience::util
