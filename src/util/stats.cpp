#include "resilience/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resilience::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci_halfwidth(double z) const noexcept { return z * sem(); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo)) {
    throw std::invalid_argument("Histogram: hi must exceed lo");
  }
  if (bins == 0) {
    throw std::invalid_argument("Histogram: need at least one bin");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_lo");
  }
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const auto in_bin = static_cast<double>(counts_[bin]);
    if (cumulative + in_bin >= target && in_bin > 0.0) {
      const double frac = (target - cumulative) / in_bin;
      return bin_lo(bin) + frac * width_;
    }
    cumulative += in_bin;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

double EventRate::per_second() const noexcept {
  if (elapsed_seconds <= 0.0) {
    return 0.0;
  }
  return count / elapsed_seconds;
}

double relative_difference(double a, double b) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

double compensated_sum(const std::vector<double>& values) noexcept {
  double sum = 0.0;
  double carry = 0.0;
  for (const double v : values) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace resilience::util
