#include "resilience/util/atomic_file.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace resilience::util {

namespace fs = std::filesystem;

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  // Per-writer unique temp name: two concurrent writers of the same
  // destination never interleave into one temp file — the last rename
  // wins whole.
  static std::atomic<std::uint64_t> temp_serial{0};
  const fs::path temp =
      path + ".tmp" +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  try {
    {
      std::ofstream out(temp, std::ios::binary | std::ios::trunc);
      if (!out) {
        if (error != nullptr) {
          *error = "cannot open " + temp.string() + " for writing";
        }
        return false;
      }
      out << content;
      out.flush();
      if (!out) {
        if (error != nullptr) {
          *error = "short write to " + temp.string();
        }
        std::error_code ignored;
        fs::remove(temp, ignored);
        return false;
      }
    }
    fs::rename(temp, path);
  } catch (const std::exception& failure) {
    if (error != nullptr) {
      *error = failure.what();
    }
    std::error_code ignored;
    fs::remove(temp, ignored);
    return false;
  }
  return true;
}

}  // namespace resilience::util
