#include "resilience/util/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace resilience::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, help, /*is_bool=*/false, std::nullopt};
}

void CliParser::add_bool_flag(const std::string& name, const std::string& help) {
  flags_[name] = Flag{"false", help, /*is_bool=*/true, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(), name.c_str());
      print_usage();
      return false;
    }
    Flag& flag = it->second;
    if (flag.is_bool) {
      flag.value = inline_value.value_or("true");
    } else if (inline_value) {
      flag.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag --%s requires a value\n", program_.c_str(),
                     name.c_str());
        print_usage();
        return false;
      }
      flag.value = argv[++i];
    }
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("CliParser: unregistered flag " + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(get_string(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get_string(name));
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::optional<std::int64_t> CliParser::checked_int(
    const std::string& name, std::int64_t min_value,
    std::int64_t max_value) const {
  const std::string text = get_string(name);
  std::int64_t value = 0;
  const char* const end = text.data() + text.size();
  const std::from_chars_result result =
      std::from_chars(text.data(), end, value, 10);
  if (text.empty() || result.ec != std::errc() || result.ptr != end) {
    std::fprintf(stderr, "%s: --%s expects an integer, got '%s'\n",
                 program_.c_str(), name.c_str(), text.c_str());
    return std::nullopt;
  }
  if (value < min_value || value > max_value) {
    if (max_value == INT64_MAX) {
      std::fprintf(stderr, "%s: --%s must be >= %lld, got %lld\n",
                   program_.c_str(), name.c_str(),
                   static_cast<long long>(min_value),
                   static_cast<long long>(value));
    } else {
      std::fprintf(stderr, "%s: --%s must be in [%lld, %lld], got %lld\n",
                   program_.c_str(), name.c_str(),
                   static_cast<long long>(min_value),
                   static_cast<long long>(max_value),
                   static_cast<long long>(value));
    }
    return std::nullopt;
  }
  return value;
}

std::optional<std::uint64_t> CliParser::checked_uint64(
    const std::string& name, std::uint64_t min_value,
    std::uint64_t max_value) const {
  const std::string text = get_string(name);
  std::uint64_t value = 0;
  const char* const end = text.data() + text.size();
  const std::from_chars_result result =
      std::from_chars(text.data(), end, value, 10);
  if (text.empty() || result.ec != std::errc() || result.ptr != end) {
    std::fprintf(stderr, "%s: --%s expects an unsigned integer, got '%s'\n",
                 program_.c_str(), name.c_str(), text.c_str());
    return std::nullopt;
  }
  if (value < min_value || value > max_value) {
    if (max_value == UINT64_MAX) {
      std::fprintf(stderr, "%s: --%s must be >= %llu, got %llu\n",
                   program_.c_str(), name.c_str(),
                   static_cast<unsigned long long>(min_value),
                   static_cast<unsigned long long>(value));
    } else {
      std::fprintf(stderr, "%s: --%s must be in [%llu, %llu], got %llu\n",
                   program_.c_str(), name.c_str(),
                   static_cast<unsigned long long>(min_value),
                   static_cast<unsigned long long>(max_value),
                   static_cast<unsigned long long>(value));
    }
    return std::nullopt;
  }
  return value;
}

std::optional<double> CliParser::checked_double(const std::string& name,
                                                double min_value,
                                                double max_value) const {
  const std::string text = get_string(name);
  double value = 0.0;
  std::size_t consumed = 0;
  bool parsed = false;
  try {
    value = std::stod(text, &consumed);
    parsed = consumed == text.size() && std::isfinite(value);
  } catch (const std::exception&) {
    parsed = false;
  }
  if (!parsed) {
    std::fprintf(stderr, "%s: --%s expects a finite number, got '%s'\n",
                 program_.c_str(), name.c_str(), text.c_str());
    return std::nullopt;
  }
  if (value < min_value || value > max_value) {
    std::fprintf(stderr, "%s: --%s must be in [%g, %g], got %g\n",
                 program_.c_str(), name.c_str(), min_value, max_value, value);
    return std::nullopt;
  }
  return value;
}

bool CliParser::was_set(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.value.has_value();
}

void CliParser::print_usage() const {
  std::printf("%s — %s\n\nFlags:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::printf("  --%-22s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                flag.default_value.c_str());
  }
  std::printf("  --%-22s %s\n", "help", "show this message");
}

}  // namespace resilience::util
