#include "resilience/util/random.hpp"

#include <cmath>

namespace resilience::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // The all-zero state is the one invalid state; SplitMix64 cannot produce
  // four consecutive zeros in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};

  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Xoshiro256 Xoshiro256::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
  Xoshiro256 engine(seed);
  for (std::uint64_t i = 0; i < stream_index; ++i) {
    engine.jump();
  }
  return engine;
}

double uniform_range(Xoshiro256& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

std::uint64_t uniform_below(Xoshiro256& rng, std::uint64_t n) noexcept {
  if (n == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double exponential(Xoshiro256& rng, double lambda) noexcept {
  if (lambda <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -std::log(uniform01_open_low(rng)) / lambda;
}

bool bernoulli(Xoshiro256& rng, double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01(rng) < p;
}

namespace {

std::uint64_t poisson_inversion(Xoshiro256& rng, double mu) noexcept {
  // Sequential search on the CDF; O(mu) expected steps, fine for mu <= 10.
  const double threshold = std::exp(-mu);
  double product = uniform01_open_low(rng);
  std::uint64_t k = 0;
  while (product > threshold) {
    product *= uniform01_open_low(rng);
    ++k;
  }
  return k;
}

std::uint64_t poisson_ptrs(Xoshiro256& rng, double mu) noexcept {
  // Transformed rejection with squeeze (Hoermann, 1993), valid for mu >= 10.
  const double b = 0.931 + 2.53 * std::sqrt(mu);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);

  for (;;) {
    const double u = uniform01(rng) - 0.5;
    const double v = uniform01_open_low(rng);
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mu + 0.43);
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(k);
    }
    if (k < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * std::log(mu) - mu - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

std::uint64_t poisson(Xoshiro256& rng, double mu) noexcept {
  if (mu <= 0.0) {
    return 0;
  }
  if (mu < 10.0) {
    return poisson_inversion(rng, mu);
  }
  return poisson_ptrs(rng, mu);
}

double truncated_exponential(Xoshiro256& rng, double lambda, double w) noexcept {
  // Inverse-CDF sampling of X | X < w with X ~ Exp(lambda):
  //   F(x) = (1 - e^{-lambda x}) / (1 - e^{-lambda w}).
  // expm1/log1p keep the computation stable when lambda * w is tiny.
  const double u = uniform01(rng);
  const double scale = -std::expm1(-lambda * w);  // 1 - e^{-lambda w}
  if (scale <= 0.0) {
    return uniform01(rng) * w;  // lambda ~ 0: the conditional law is uniform
  }
  const double x = -std::log1p(-u * scale) / lambda;
  return x < w ? x : std::nextafter(w, 0.0);
}

}  // namespace resilience::util
