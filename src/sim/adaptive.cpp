#include "resilience/sim/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resilience::sim {

AdaptiveResult run_adaptive_monte_carlo(const core::PatternSpec& pattern,
                                        const core::ModelParams& params,
                                        const AdaptiveConfig& config) {
  if (config.max_runs == 0) {
    throw std::invalid_argument("run_adaptive_monte_carlo: max_runs == 0");
  }
  const std::uint64_t min_runs =
      std::min(std::max<std::uint64_t>(1, config.min_runs), config.max_runs);

  AdaptiveResult result;
  while (result.runs < config.max_runs) {
    if (config.check_cancel) {
      config.check_cancel();
    }
    // Doubling schedule: 64, 64, 128, 256, ... (cumulative 64, 128, 256,
    // 512, ...). Boundaries depend only on min_runs, so max_runs can
    // truncate the FINAL batch but never move an earlier boundary.
    const std::uint64_t planned = result.runs == 0 ? min_runs : result.runs;
    const std::uint64_t batch =
        std::min(planned, config.max_runs - result.runs);

    MonteCarloConfig mc;
    mc.runs = batch;
    mc.patterns_per_run = config.patterns_per_run;
    mc.seed = config.seed;
    mc.first_run = result.runs;  // global run indexing: batches continue
    mc.pool = config.pool;
    mc.model_factory = config.model_factory;
    const MonteCarloResult step = run_monte_carlo(pattern, params, mc);

    // Sequential fold in schedule order: Chan's merge is deterministic for
    // a fixed batch sequence, so the aggregate is pool-size independent.
    result.aggregate.merge(step.aggregate);
    result.totals.merge(step.totals);
    result.runs += step.runs;

    if (config.target_ci > 0.0 && result.runs >= min_runs) {
      const double mean = std::fabs(result.aggregate.overhead.mean());
      const double half = result.aggregate.overhead.ci_halfwidth();
      // Guard the denominator: a zero-overhead cell stops on an absolute
      // test instead of dividing by zero.
      const double relative = half / std::max(mean, 1e-300);
      if (relative <= config.target_ci) {
        result.early_stopped = result.runs < config.max_runs;
        return result;
      }
    }
  }
  return result;
}

}  // namespace resilience::sim
