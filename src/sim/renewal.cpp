#include "resilience/sim/renewal.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace resilience::sim {

void RenewalConfig::validate() const {
  if (mtbf < 0.0) {
    throw std::invalid_argument("RenewalConfig: mtbf must be >= 0");
  }
  if (distribution != FailureDistribution::kExponential && !(shape > 0.0)) {
    throw std::invalid_argument("RenewalConfig: shape must be positive");
  }
}

double sample_interarrival(const RenewalConfig& config, util::Xoshiro256& rng) {
  config.validate();
  if (config.mtbf <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  switch (config.distribution) {
    case FailureDistribution::kExponential:
      return util::exponential(rng, 1.0 / config.mtbf);
    case FailureDistribution::kWeibull: {
      // X = scale * (-ln U)^{1/k}; mean = scale * Gamma(1 + 1/k), so the
      // scale is chosen to pin the mean at the MTBF.
      const double k = config.shape;
      const double scale = config.mtbf / std::tgamma(1.0 + 1.0 / k);
      const double u = util::uniform01_open_low(rng);
      return scale * std::pow(-std::log(u), 1.0 / k);
    }
    case FailureDistribution::kLogNormal: {
      // X = exp(mu + sigma Z); mean = exp(mu + sigma^2/2), so
      // mu = ln(mtbf) - sigma^2/2 pins the mean at the MTBF.
      const double sigma = config.shape;
      const double mu = std::log(config.mtbf) - 0.5 * sigma * sigma;
      // Box-Muller transform for a standard normal variate.
      const double u1 = util::uniform01_open_low(rng);
      const double u2 = util::uniform01(rng);
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      return std::exp(mu + sigma * z);
    }
  }
  throw std::logic_error("sample_interarrival: unreachable");
}

RenewalErrorModel::RenewalErrorModel(RenewalConfig fail_stop, RenewalConfig silent,
                                     util::Xoshiro256 rng)
    : fail_stop_(fail_stop), silent_(silent), rng_(rng) {
  fail_stop_.validate();
  silent_.validate();
  until_fail_stop_ = sample_interarrival(fail_stop_, rng_);
  until_silent_ = sample_interarrival(silent_, rng_);
}

FailStopOutcome RenewalErrorModel::sample_fail_stop(double length) {
  FailStopOutcome outcome;
  if (length <= 0.0 || until_fail_stop_ > length) {
    outcome.time_survived = length;
    until_fail_stop_ -= length;
    return outcome;
  }
  outcome.struck = true;
  outcome.time_survived = until_fail_stop_;
  // Renewal: the countdown restarts at the failure instant.
  until_fail_stop_ = sample_interarrival(fail_stop_, rng_);
  return outcome;
}

bool RenewalErrorModel::sample_silent(double length) {
  if (length <= 0.0) {
    return false;
  }
  bool corrupted = false;
  double remaining = length;
  // Consume every silent arrival inside the window (there can be several
  // for bursty distributions); the flag model only needs "at least one".
  while (until_silent_ <= remaining) {
    corrupted = true;
    remaining -= until_silent_;
    until_silent_ = sample_interarrival(silent_, rng_);
  }
  until_silent_ -= remaining;
  return corrupted;
}

bool RenewalErrorModel::sample_detection(double recall) {
  return util::bernoulli(rng_, recall);
}

std::unique_ptr<RenewalErrorModel> make_renewal_model(
    const core::ErrorRates& rates, FailureDistribution distribution, double shape,
    util::Xoshiro256 rng) {
  RenewalConfig fail_stop;
  fail_stop.distribution = distribution;
  fail_stop.mtbf = rates.fail_stop > 0.0 ? 1.0 / rates.fail_stop : 0.0;
  fail_stop.shape = shape;
  RenewalConfig silent;
  silent.distribution = distribution;
  silent.mtbf = rates.silent > 0.0 ? 1.0 / rates.silent : 0.0;
  silent.shape = shape;
  return std::make_unique<RenewalErrorModel>(fail_stop, silent, rng);
}

}  // namespace resilience::sim
