#include "resilience/sim/trace.hpp"

#include <ostream>
#include <stdexcept>

namespace resilience::sim {

std::string event_name(Event event) {
  switch (event) {
    case Event::kChunkCompleted:
      return "chunk_completed";
    case Event::kFailStop:
      return "fail_stop";
    case Event::kSilentInjected:
      return "silent_injected";
    case Event::kPartialAlarm:
      return "partial_alarm";
    case Event::kGuaranteedAlarm:
      return "guaranteed_alarm";
    case Event::kMemoryCheckpoint:
      return "memory_checkpoint";
    case Event::kDiskCheckpoint:
      return "disk_checkpoint";
    case Event::kMemoryRecovery:
      return "memory_recovery";
    case Event::kDiskRecovery:
      return "disk_recovery";
    case Event::kPatternCompleted:
      return "pattern_completed";
  }
  throw std::logic_error("event_name: unreachable");
}

TraceRecorder::TraceRecorder(std::size_t capacity_hint) {
  entries_.reserve(capacity_hint);
}

EventObserver TraceRecorder::observer() {
  return [this](Event event, double clock) { record(event, clock); };
}

void TraceRecorder::record(Event event, double clock) {
  entries_.push_back(TraceEntry{event, clock});
}

void TraceRecorder::clear() noexcept { entries_.clear(); }

std::size_t TraceRecorder::count(Event event) const noexcept {
  std::size_t total = 0;
  for (const auto& entry : entries_) {
    if (entry.event == event) {
      ++total;
    }
  }
  return total;
}

util::RunningStats TraceRecorder::inter_event_gaps(Event event) const {
  util::RunningStats gaps;
  bool has_previous = false;
  double previous = 0.0;
  for (const auto& entry : entries_) {
    if (entry.event != event) {
      continue;
    }
    if (has_previous) {
      gaps.add(entry.clock - previous);
    }
    previous = entry.clock;
    has_previous = true;
  }
  return gaps;
}

double TraceRecorder::first_occurrence(Event event) const {
  for (const auto& entry : entries_) {
    if (entry.event == event) {
      return entry.clock;
    }
  }
  throw std::out_of_range("TraceRecorder: event never occurred");
}

double TraceRecorder::last_occurrence(Event event) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->event == event) {
      return it->clock;
    }
  }
  throw std::out_of_range("TraceRecorder: event never occurred");
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "clock,event\n";
  for (const auto& entry : entries_) {
    os << entry.clock << ',' << event_name(entry.event) << '\n';
  }
}

}  // namespace resilience::sim
