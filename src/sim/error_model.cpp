#include "resilience/sim/error_model.hpp"

namespace resilience::sim {

FailStopOutcome ErrorModel::sample_fail_stop(double length) {
  FailStopOutcome outcome;
  outcome.time_survived = length;
  if (length <= 0.0 || rates_.fail_stop <= 0.0) {
    return outcome;
  }
  const double p = core::error_probability(rates_.fail_stop, length);
  if (util::bernoulli(rng_, p)) {
    outcome.struck = true;
    outcome.time_survived =
        util::truncated_exponential(rng_, rates_.fail_stop, length);
  }
  return outcome;
}

bool ErrorModel::sample_silent(double length) {
  if (length <= 0.0 || rates_.silent <= 0.0) {
    return false;
  }
  return util::bernoulli(rng_, core::error_probability(rates_.silent, length));
}

bool ErrorModel::sample_detection(double recall) {
  return util::bernoulli(rng_, recall);
}

}  // namespace resilience::sim
