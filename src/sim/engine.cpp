#include "resilience/sim/engine.hpp"

namespace resilience::sim {

RunMetrics simulate_run(const core::PatternSpec& pattern,
                        const core::ModelParams& params, ErrorModelBase& errors,
                        const EngineConfig& config) {
  return simulate_patterns(pattern, params, errors, config.patterns,
                           FunctionObserver{config.observer});
}

}  // namespace resilience::sim
