#include "resilience/sim/runner.hpp"

#include <mutex>
#include <vector>

#include "resilience/sim/engine.hpp"

namespace resilience::sim {

MonteCarloResult run_monte_carlo(const core::PatternSpec& pattern,
                                 const core::ModelParams& params,
                                 const MonteCarloConfig& config) {
  params.validate();
  util::ThreadPool& pool = config.pool ? *config.pool : util::global_pool();

  // Per-run metrics are collected positionally, then folded sequentially so
  // the aggregate is independent of scheduling order.
  std::vector<RunMetrics> per_run(config.runs);

  pool.parallel_for(config.runs, [&](std::size_t run_index) {
    util::Xoshiro256 run_rng = util::Xoshiro256::stream(config.seed, run_index);
    EngineConfig engine_config;
    engine_config.patterns = config.patterns_per_run;
    if (config.model_factory) {
      const std::unique_ptr<ErrorModelBase> errors = config.model_factory(run_rng);
      per_run[run_index] = simulate_run(pattern, params, *errors, engine_config);
    } else {
      ErrorModel errors(params.rates, run_rng);
      per_run[run_index] = simulate_run(pattern, params, errors, engine_config);
    }
  });

  MonteCarloResult result;
  result.runs = config.runs;
  for (const auto& run : per_run) {
    result.aggregate.add_run(run);
    result.totals.merge(run);
  }
  return result;
}

}  // namespace resilience::sim
