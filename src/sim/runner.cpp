#include "resilience/sim/runner.hpp"

#include <vector>

#include "resilience/sim/engine.hpp"

namespace resilience::sim {

namespace {

/// Simulates one run with the observer bound statically when absent, so the
/// default campaign keeps the fully devirtualized engine instantiation.
template <typename Model>
RunMetrics simulate_one(const core::PatternSpec& pattern,
                        const core::ModelParams& params, Model& errors,
                        const MonteCarloConfig& config) {
  if (config.observer != nullptr) {
    return simulate_patterns(pattern, params, errors, config.patterns_per_run,
                             FunctionObserver{config.observer});
  }
  return simulate_patterns(pattern, params, errors, config.patterns_per_run);
}

}  // namespace

MonteCarloResult run_monte_carlo(const core::PatternSpec& pattern,
                                 const core::ModelParams& params,
                                 const MonteCarloConfig& config) {
  params.validate();
  util::ThreadPool& pool = config.pool ? *config.pool : util::global_pool();

  // Per-run metrics are collected positionally, then folded sequentially so
  // the aggregate is independent of scheduling order.
  std::vector<RunMetrics> per_run(config.runs);

  // Runs are batched per ticket range so each worker derives its RNG
  // sub-streams incrementally: one jump per run after the initial seek
  // instead of `run_index` jumps per run. Streams stay indexed by run, so
  // the campaign is bit-identical across thread counts and grains.
  pool.parallel_for_ranges(
      config.runs, [&](std::size_t begin, std::size_t end) {
        util::Xoshiro256 stream_rng =
            util::Xoshiro256::stream(config.seed, config.first_run + begin);
        for (std::size_t run_index = begin; run_index < end; ++run_index) {
          util::Xoshiro256 run_rng = stream_rng;
          stream_rng.jump();
          if (config.model_factory) {
            const std::unique_ptr<ErrorModelBase> errors =
                config.model_factory(run_rng);
            per_run[run_index] = simulate_one(pattern, params, *errors, config);
          } else {
            PoissonArrivalModel errors(params.rates, run_rng);
            per_run[run_index] = simulate_one(pattern, params, errors, config);
          }
        }
      });

  MonteCarloResult result;
  result.runs = config.runs;
  for (const auto& run : per_run) {
    result.aggregate.add_run(run);
    result.totals.merge(run);
  }
  return result;
}

}  // namespace resilience::sim
