#include "resilience/sim/metrics.hpp"

namespace resilience::sim {

double RunMetrics::overhead() const noexcept {
  if (useful_work_seconds <= 0.0) {
    return 0.0;
  }
  return elapsed_seconds / useful_work_seconds - 1.0;
}

void RunMetrics::merge(const RunMetrics& other) noexcept {
  elapsed_seconds += other.elapsed_seconds;
  useful_work_seconds += other.useful_work_seconds;
  patterns_completed += other.patterns_completed;
  disk_checkpoints += other.disk_checkpoints;
  memory_checkpoints += other.memory_checkpoints;
  partial_verifications += other.partial_verifications;
  guaranteed_verifications += other.guaranteed_verifications;
  disk_recoveries += other.disk_recoveries;
  memory_recoveries += other.memory_recoveries;
  fail_stop_errors += other.fail_stop_errors;
  silent_errors += other.silent_errors;
  silent_detections_partial += other.silent_detections_partial;
  silent_detections_guaranteed += other.silent_detections_guaranteed;
}

void AggregateMetrics::add_run(const RunMetrics& run) {
  overhead.add(run.overhead());
  elapsed_seconds.add(run.elapsed_seconds);

  const double hours = run.elapsed_seconds / 3600.0;
  const double days = run.elapsed_seconds / 86400.0;
  if (hours > 0.0) {
    disk_checkpoints_per_hour.add(static_cast<double>(run.disk_checkpoints) / hours);
    memory_checkpoints_per_hour.add(static_cast<double>(run.memory_checkpoints) /
                                    hours);
    verifications_per_hour.add(static_cast<double>(run.verifications()) / hours);
  }
  if (days > 0.0) {
    disk_recoveries_per_day.add(static_cast<double>(run.disk_recoveries) / days);
    memory_recoveries_per_day.add(static_cast<double>(run.memory_recoveries) / days);
  }
  if (run.patterns_completed > 0) {
    const auto patterns = static_cast<double>(run.patterns_completed);
    disk_recoveries_per_pattern.add(static_cast<double>(run.disk_recoveries) /
                                    patterns);
    memory_recoveries_per_pattern.add(static_cast<double>(run.memory_recoveries) /
                                      patterns);
  }
}

void AggregateMetrics::merge(const AggregateMetrics& other) {
  overhead.merge(other.overhead);
  elapsed_seconds.merge(other.elapsed_seconds);
  disk_checkpoints_per_hour.merge(other.disk_checkpoints_per_hour);
  memory_checkpoints_per_hour.merge(other.memory_checkpoints_per_hour);
  verifications_per_hour.merge(other.verifications_per_hour);
  disk_recoveries_per_day.merge(other.disk_recoveries_per_day);
  memory_recoveries_per_day.merge(other.memory_recoveries_per_day);
  disk_recoveries_per_pattern.merge(other.disk_recoveries_per_pattern);
  memory_recoveries_per_pattern.merge(other.memory_recoveries_per_pattern);
}

}  // namespace resilience::sim
