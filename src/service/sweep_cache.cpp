#include "resilience/service/sweep_cache.hpp"

namespace resilience::service {

SweepCache::SweepCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const core::SweepTable> SweepCache::find(
    core::GridSignature signature) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(signature.value);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote; iterator stays valid
  return it->second->table;
}

void SweepCache::insert(core::GridSignature signature,
                        std::shared_ptr<const core::SweepTable> table) {
  if (capacity_ == 0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(signature.value);
  if (it != index_.end()) {
    it->second->table = std::move(table);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{signature, std::move(table)});
  index_[signature.value] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().signature.value);
    lru_.pop_back();
  }
}

void SweepCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t SweepCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t SweepCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SweepCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace resilience::service
