#include "resilience/service/sweep_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "resilience/service/serialize.hpp"
#include "resilience/service/sim_table.hpp"
#include "resilience/util/atomic_file.hpp"
#include "resilience/util/json.hpp"

namespace resilience::service {

namespace {

namespace fs = std::filesystem;

constexpr const char* kSidecarName = "seed_index.json";
constexpr const char* kSpillFormat = "sweep-table-spill-v1";
constexpr const char* kSimSpillFormat = "sim-table-spill-v1";

fs::path table_path(const std::string& dir, core::GridSignature signature) {
  return fs::path(dir) / (signature.hex() + ".json");
}

fs::path sim_table_path(const std::string& dir, core::GridSignature signature) {
  return fs::path(dir) / (signature.hex() + ".sim.json");
}

void warn(const char* what, const std::string& detail) {
  std::fprintf(stderr, "SweepCache: %s (%s)\n", what, detail.c_str());
}

/// FNV-1a 64 over the spilled payload bytes. The filename signature only
/// covers the table's *inputs* (points, kinds, options), so without this
/// a flipped bit inside a result field (overhead, work, n, m) would
/// verify clean; the payload checksum closes that hole. Carried as a
/// GridSignature purely for its hex round trip.
core::GridSignature payload_checksum(const std::string& payload) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char byte : payload) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return core::GridSignature{hash};
}

/// The on-disk document: the canonical table JSON wrapped with a format
/// tag and its payload checksum. Assembled textually — every component is
/// already canonical JSON, and parse -> re-dump of the payload is
/// byte-identical, which is what lets the loader re-derive the checksum.
std::string spill_document(const core::SweepTable& table) {
  const std::string payload = to_json(table).dump();
  return std::string("{\"format\":\"") + kSpillFormat + "\",\"payload_fnv\":\"" +
         payload_checksum(payload).hex() + "\",\"table\":" + payload + "}";
}

std::string sim_spill_document(const SimTable& table) {
  const std::string payload = to_json(table).dump();
  return std::string("{\"format\":\"") + kSimSpillFormat +
         "\",\"payload_fnv\":\"" + payload_checksum(payload).hex() +
         "\",\"table\":" + payload + "}";
}

/// Writes one spill file atomically (util::write_file_atomic: unique
/// temp file + rename): a concurrent lazy load must never observe a
/// truncated half-write, only the old or the new complete document — and
/// the per-writer temp name keeps two concurrent spills of the same
/// signature (identical content, so last rename wins harmlessly) from
/// interleaving into one tmp file. Returns false (after a warning) on
/// failure.
bool write_spill_file(const fs::path& path, const std::string& document) {
  std::string error;
  if (!util::write_file_atomic(path.string(), document, &error)) {
    warn("spill failed", error);
    return false;
  }
  return true;
}

}  // namespace

SweepCache::SweepCache(std::size_t capacity, std::string cache_dir)
    : capacity_(capacity), cache_dir_(std::move(cache_dir)) {
  if (capacity_ == 0) {
    cache_dir_.clear();  // capacity 0 disables every tier, disk included
  }
  if (!cache_dir_.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    try {
      load_disk_index_locked();
    } catch (const std::exception& error) {
      warn("cannot index cache directory; disk tier disabled", error.what());
      cache_dir_.clear();
    }
  }
}

SweepCache::~SweepCache() {
  try {
    persist_now();
  } catch (...) {
    // Destructor: a failed spill only loses warmth, never correctness.
  }
}

std::shared_ptr<const core::SweepTable> SweepCache::find(
    core::GridSignature signature) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(signature.value);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote; iterator stays valid
  return it->second->table;
}

std::shared_ptr<const core::SweepTable> SweepCache::find(
    core::GridSignature signature, const core::SweepOptions& options,
    bool* loaded_from_disk) {
  if (loaded_from_disk != nullptr) {
    *loaded_from_disk = false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(signature.value);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->table;
  }
  if (std::shared_ptr<const core::SweepTable> table =
          load_from_disk_locked(signature, options)) {
    ++hits_;
    if (loaded_from_disk != nullptr) {
      *loaded_from_disk = true;
    }
    return table;
  }
  ++misses_;
  return nullptr;
}

void SweepCache::insert(core::GridSignature signature,
                        std::shared_ptr<const core::SweepTable> table) {
  insert(signature, std::move(table), {});
}

void SweepCache::insert(core::GridSignature signature,
                        std::shared_ptr<const core::SweepTable> table,
                        std::vector<core::GridChain> chains) {
  if (capacity_ == 0) {
    return;
  }
  std::vector<Entry> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(signature.value);
    if (it != index_.end()) {
      unindex_chains_locked(signature, it->second->chains);
      it->second->table = std::move(table);
      it->second->chains = std::move(chains);
      index_chains_locked(signature, it->second->chains);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{signature, std::move(table), std::move(chains)});
    index_[signature.value] = lru_.begin();
    index_chains_locked(signature, lru_.front().chains);
    bool sidecar_dirty = false;
    while (lru_.size() > capacity_) {
      Entry& victim = lru_.back();
      index_.erase(victim.signature.value);
      if (cache_dir_.empty()) {
        // No disk tier: the optima are gone, stop advertising them.
        unindex_chains_locked(victim.signature, victim.chains);
      } else if (disk_index_.count(victim.signature.value) != 0) {
        // Already spilled — the file content is a pure function of the
        // signature, so rewriting it would only waste IO and race
        // concurrent loads with a truncated file. Just make sure the
        // chains stay reachable for the seed tier.
        if (!victim.chains.empty() &&
            disk_chains_.find(victim.signature.value) == disk_chains_.end()) {
          disk_chains_[victim.signature.value] = std::move(victim.chains);
          sidecar_dirty = true;
        }
      } else {
        victims.push_back(std::move(victim));  // spilled below, unlocked
      }
      lru_.pop_back();
    }
    if (sidecar_dirty) {
      write_sidecar_locked();
    }
  }
  spill_evicted(std::move(victims));
}

void SweepCache::spill_evicted(std::vector<Entry> victims) {
  if (victims.empty()) {
    return;
  }
  // Expensive part without the lock: canonical serialization + file IO.
  std::vector<bool> spilled(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    spilled[i] = write_spill_file(table_path(cache_dir_, victims[i].signature),
                                  spill_document(*victims[i].table));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  bool any = false;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const Entry& victim = victims[i];
    if (spilled[i]) {
      disk_index_.insert(victim.signature.value);
      if (!victim.chains.empty()) {
        disk_chains_[victim.signature.value] = victim.chains;
      }
      any = true;
    } else if (index_.find(victim.signature.value) == index_.end()) {
      // Spill failed and nobody re-inserted the signature meanwhile: the
      // optima are unreachable, so the seed index must drop them.
      unindex_chains_locked(victim.signature, victim.chains);
    }
  }
  if (any) {
    write_sidecar_locked();
  }
}

std::vector<core::ChainSeed> SweepCache::seeds_for(
    core::ChainKey key, const core::SweepOptions& options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seed_index_.find(key.value);
  if (it == seed_index_.end()) {
    return {};
  }
  // Copy: lazy disk promotion below may grow/shuffle the index vectors.
  const std::vector<std::uint64_t> signatures = it->second;
  std::vector<core::ChainSeed> seeds;
  for (const std::uint64_t signature_value : signatures) {
    const core::GridSignature signature{signature_value};
    std::shared_ptr<const core::SweepTable> table;
    std::vector<core::GridChain> chains;
    const auto entry_it = index_.find(signature_value);
    if (entry_it != index_.end()) {
      table = entry_it->second->table;
      chains = entry_it->second->chains;
      lru_.splice(lru_.begin(), lru_, entry_it->second);
    } else {
      table = load_from_disk_locked(signature, options);
      const auto chains_it = disk_chains_.find(signature_value);
      if (chains_it != disk_chains_.end()) {
        chains = chains_it->second;
      }
    }
    if (table == nullptr) {
      continue;
    }
    for (const core::GridChain& chain : chains) {
      if (chain.key != key) {
        continue;
      }
      const auto kind_index = static_cast<std::size_t>(chain.kind);
      if (kind_index >= table->kind_slot.size() ||
          table->kind_slot[kind_index] < 0) {
        continue;  // family absent from the table (stale sidecar entry)
      }
      for (std::size_t p = 0; p < table->points.size(); ++p) {
        const core::ScenarioPoint& point = table->points[p];
        if (point.platform_index != chain.platform_index ||
            point.cost_index != chain.cost_index) {
          continue;
        }
        seeds.push_back(core::ChainSeed{point.platform.nodes, point.params,
                                        table->cell(p, chain.kind)});
      }
    }
  }
  if (!seeds.empty()) {
    ++seed_hits_;
  }
  return seeds;
}

bool SweepCache::contains(core::GridSignature signature) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(signature.value) != index_.end() ||
         disk_index_.count(signature.value) != 0;
}

bool SweepCache::has_seeds(core::ChainKey key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seed_index_.find(key.value) != seed_index_.end();
}

void SweepCache::persist_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cache_dir_.empty()) {
    return;
  }
  for (const Entry& entry : lru_) {
    if (disk_index_.count(entry.signature.value) != 0) {
      // Already spilled with identical content (pure function of the
      // signature); just keep its chains reachable for the seed tier.
      if (!entry.chains.empty() &&
          disk_chains_.find(entry.signature.value) == disk_chains_.end()) {
        disk_chains_[entry.signature.value] = entry.chains;
      }
      continue;
    }
    spill_locked(entry);
  }
  write_sidecar_locked();
  for (const SimEntry& entry : sim_lru_) {
    if (sim_disk_index_.count(entry.signature.value) != 0) {
      continue;  // already spilled; content is a pure function of the key
    }
    spill_sim_locked(entry);
  }
}

void SweepCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  sim_lru_.clear();
  sim_index_.clear();
  // The seed index keeps only what the disk tier still backs.
  seed_index_.clear();
  for (const auto& [signature_value, chains] : disk_chains_) {
    index_chains_locked(core::GridSignature{signature_value}, chains);
  }
}

std::size_t SweepCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t SweepCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SweepCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t SweepCache::seed_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seed_hits_;
}

std::uint64_t SweepCache::disk_loads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_loads_;
}

std::uint64_t SweepCache::disk_rejects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_rejects_;
}

void SweepCache::index_chains_locked(
    core::GridSignature signature, const std::vector<core::GridChain>& chains) {
  for (const core::GridChain& chain : chains) {
    std::vector<std::uint64_t>& owners = seed_index_[chain.key.value];
    if (std::find(owners.begin(), owners.end(), signature.value) ==
        owners.end()) {
      owners.push_back(signature.value);
    }
  }
}

void SweepCache::unindex_chains_locked(
    core::GridSignature signature, const std::vector<core::GridChain>& chains) {
  for (const core::GridChain& chain : chains) {
    const auto it = seed_index_.find(chain.key.value);
    if (it == seed_index_.end()) {
      continue;
    }
    it->second.erase(
        std::remove(it->second.begin(), it->second.end(), signature.value),
        it->second.end());
    if (it->second.empty()) {
      seed_index_.erase(it);
    }
  }
}

void SweepCache::evict_one_locked() {
  // Locked spill path: only reached from lazy disk promotion (rare —
  // once per reloaded entry); bulk evictions go through spill_evicted.
  // Promotion victims are usually disk-resident already (the common churn
  // is reload A -> evict B where B was itself reloaded), so the
  // already-on-disk check below makes re-eviction a pure in-memory pop.
  Entry& victim = lru_.back();
  bool spilled = false;
  if (!cache_dir_.empty()) {
    if (disk_index_.count(victim.signature.value) != 0) {
      spilled = true;  // content is a pure function of the signature
      if (!victim.chains.empty() &&
          disk_chains_.find(victim.signature.value) == disk_chains_.end()) {
        disk_chains_[victim.signature.value] = std::move(victim.chains);
        write_sidecar_locked();
      }
    } else {
      spill_locked(victim);
      spilled = disk_index_.count(victim.signature.value) != 0;
      if (spilled) {
        write_sidecar_locked();
      }
    }
  }
  if (!spilled) {
    // No disk tier (or the spill failed): the optima are gone, so the
    // seed index must stop advertising them.
    unindex_chains_locked(victim.signature, victim.chains);
  }
  index_.erase(victim.signature.value);
  lru_.pop_back();
}

void SweepCache::spill_locked(const Entry& entry) {
  if (!write_spill_file(table_path(cache_dir_, entry.signature),
                        spill_document(*entry.table))) {
    return;
  }
  disk_index_.insert(entry.signature.value);
  if (!entry.chains.empty()) {
    disk_chains_[entry.signature.value] = entry.chains;
  }
}

void SweepCache::write_sidecar_locked() {
  // Deterministic sidecar: entries sorted by signature hex.
  std::vector<std::uint64_t> signatures;
  signatures.reserve(disk_chains_.size());
  for (const auto& [signature_value, chains] : disk_chains_) {
    signatures.push_back(signature_value);
  }
  std::sort(signatures.begin(), signatures.end());

  util::JsonValue entries = util::JsonValue::array();
  for (const std::uint64_t signature_value : signatures) {
    util::JsonValue chains = util::JsonValue::array();
    for (const core::GridChain& chain : disk_chains_[signature_value]) {
      util::JsonValue chain_json = util::JsonValue::object();
      chain_json.set("key", chain.key.hex());
      chain_json.set("platform_index", chain.platform_index);
      chain_json.set("cost_index", chain.cost_index);
      chain_json.set("kind", core::pattern_name(chain.kind));
      chains.push_back(std::move(chain_json));
    }
    util::JsonValue entry = util::JsonValue::object();
    entry.set("signature", core::GridSignature{signature_value}.hex());
    entry.set("chains", std::move(chains));
    entries.push_back(std::move(entry));
  }
  util::JsonValue sidecar = util::JsonValue::object();
  sidecar.set("version", 1);
  sidecar.set("entries", std::move(entries));

  // Atomic like the spill files themselves: a crash (or a concurrent
  // reader) must never see a truncated sidecar — it would poison the
  // next startup's seed index for every spilled table at once.
  const fs::path path = fs::path(cache_dir_) / kSidecarName;
  std::string error;
  if (!util::write_file_atomic(path.string(), sidecar.dump(2), &error)) {
    warn("seed sidecar write failed", error);
  }
}

void SweepCache::load_disk_index_locked() {
  fs::create_directories(cache_dir_);
  for (const fs::directory_entry& file : fs::directory_iterator(cache_dir_)) {
    if (!file.is_regular_file() || file.path().extension() != ".json") {
      continue;
    }
    const fs::path stem = file.path().stem();  // "<hex>" or "<hex>.sim"
    if (stem.extension() == ".sim") {
      if (const auto signature =
              core::GridSignature::from_hex(stem.stem().string())) {
        sim_disk_index_.insert(signature->value);
      }
      continue;
    }
    if (const auto signature = core::GridSignature::from_hex(stem.string())) {
      disk_index_.insert(signature->value);
    }
  }

  const fs::path sidecar_path = fs::path(cache_dir_) / kSidecarName;
  if (!fs::exists(sidecar_path)) {
    return;
  }
  try {
    std::ifstream in(sidecar_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const util::JsonValue sidecar = util::JsonValue::parse(buffer.str());
    const util::JsonValue* entries = sidecar.find("entries");
    if (entries == nullptr) {
      return;
    }
    for (const util::JsonValue& entry : entries->as_array()) {
      const util::JsonValue* signature_json = entry.find("signature");
      const util::JsonValue* chains_json = entry.find("chains");
      if (signature_json == nullptr || chains_json == nullptr) {
        continue;
      }
      const auto signature =
          core::GridSignature::from_hex(signature_json->as_string());
      if (!signature || disk_index_.count(signature->value) == 0) {
        continue;  // sidecar entry without a spill file
      }
      std::vector<core::GridChain> chains;
      for (const util::JsonValue& chain_json : chains_json->as_array()) {
        const util::JsonValue* key = chain_json.find("key");
        const util::JsonValue* platform_index =
            chain_json.find("platform_index");
        const util::JsonValue* cost_index = chain_json.find("cost_index");
        const util::JsonValue* kind = chain_json.find("kind");
        if (key == nullptr || platform_index == nullptr ||
            cost_index == nullptr || kind == nullptr) {
          continue;
        }
        const auto chain_key = core::ChainKey::from_hex(key->as_string());
        if (!chain_key) {
          continue;
        }
        core::GridChain chain;
        chain.key = *chain_key;
        chain.platform_index =
            static_cast<std::size_t>(platform_index->as_double());
        chain.cost_index = static_cast<std::size_t>(cost_index->as_double());
        chain.kind = core::pattern_kind_from_name(kind->as_string());
        chains.push_back(chain);
      }
      disk_chains_[signature->value] = std::move(chains);
      index_chains_locked(*signature, disk_chains_[signature->value]);
    }
  } catch (const std::exception& error) {
    // A corrupt sidecar only costs seed reuse; the identity tier still
    // verifies every file it loads.
    warn("ignoring unreadable seed sidecar", error.what());
  }
}

std::shared_ptr<const core::SweepTable> SweepCache::load_from_disk_locked(
    core::GridSignature signature, const core::SweepOptions& options) {
  if (cache_dir_.empty() || disk_index_.count(signature.value) == 0) {
    return nullptr;
  }
  const fs::path path = table_path(cache_dir_, signature);
  const auto reject = [&](const char* why, const std::string& detail) {
    warn(why, detail);
    ++disk_rejects_;
    // Stop advertising the file: serving it later would repeat the
    // failure, and the seed index must not keep pointing at it.
    disk_index_.erase(signature.value);
    const auto chains_it = disk_chains_.find(signature.value);
    if (chains_it != disk_chains_.end() &&
        index_.find(signature.value) == index_.end()) {
      unindex_chains_locked(signature, chains_it->second);
      disk_chains_.erase(chains_it);
    }
  };

  core::SweepTable loaded;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      reject("cannot open spill file", path.string());
      return nullptr;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const util::JsonValue document = util::JsonValue::parse(buffer.str());
    const util::JsonValue* format = document.find("format");
    const util::JsonValue* checksum = document.find("payload_fnv");
    const util::JsonValue* table_json = document.find("table");
    if (format == nullptr || format->as_string() != kSpillFormat ||
        checksum == nullptr || table_json == nullptr) {
      reject("rejecting spill file with unknown format", path.string());
      return nullptr;
    }
    // Result-field integrity: the payload's canonical re-dump must hash
    // back to the stored checksum (parse -> dump is byte-identical, so
    // this validates the original payload bytes, cells included — the
    // filename signature below only covers the table's inputs).
    const auto stored = core::GridSignature::from_hex(checksum->as_string());
    if (!stored || payload_checksum(table_json->dump()) != *stored) {
      reject("rejecting spill file whose payload checksum does not match",
             path.string());
      return nullptr;
    }
    loaded = table_from_json(*table_json);
  } catch (const std::exception& error) {
    reject("rejecting unparseable spill file", path.string() + ": " +
                                                   error.what());
    return nullptr;
  }

  // The content must hash back to the filename under the caller's
  // result-affecting options — a corrupt or foreign spill (or one written
  // under a different configuration) is recomputed, never served.
  const core::GridSignature recomputed =
      core::grid_signature(loaded.points, loaded.kinds, options);
  if (recomputed != signature) {
    reject("rejecting spill file whose content does not match its signature",
           path.string() + ": content hashes to " + recomputed.hex());
    return nullptr;
  }

  ++disk_loads_;
  auto table = std::make_shared<const core::SweepTable>(std::move(loaded));
  if (capacity_ == 0) {
    return table;  // caching disabled: serve without promoting
  }
  std::vector<core::GridChain> chains;
  const auto chains_it = disk_chains_.find(signature.value);
  if (chains_it != disk_chains_.end()) {
    chains = chains_it->second;
  }
  lru_.push_front(Entry{signature, table, std::move(chains)});
  index_[signature.value] = lru_.begin();
  index_chains_locked(signature, lru_.front().chains);
  while (lru_.size() > capacity_) {
    evict_one_locked();
  }
  return table;
}

std::shared_ptr<const SimTable> SweepCache::find_sim(
    core::GridSignature signature, bool* loaded_from_disk) {
  if (loaded_from_disk != nullptr) {
    *loaded_from_disk = false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sim_index_.find(signature.value);
  if (it != sim_index_.end()) {
    ++hits_;
    sim_lru_.splice(sim_lru_.begin(), sim_lru_, it->second);
    return it->second->table;
  }
  if (std::shared_ptr<const SimTable> table =
          load_sim_from_disk_locked(signature)) {
    ++hits_;
    if (loaded_from_disk != nullptr) {
      *loaded_from_disk = true;
    }
    return table;
  }
  ++misses_;
  return nullptr;
}

void SweepCache::insert_sim(core::GridSignature signature,
                            std::shared_ptr<const SimTable> table) {
  if (capacity_ == 0) {
    return;
  }
  std::vector<SimEntry> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sim_index_.find(signature.value);
    if (it != sim_index_.end()) {
      it->second->table = std::move(table);
      sim_lru_.splice(sim_lru_.begin(), sim_lru_, it->second);
      return;
    }
    sim_lru_.push_front(SimEntry{signature, std::move(table)});
    sim_index_[signature.value] = sim_lru_.begin();
    while (sim_lru_.size() > capacity_) {
      SimEntry& victim = sim_lru_.back();
      sim_index_.erase(victim.signature.value);
      if (!cache_dir_.empty() &&
          sim_disk_index_.count(victim.signature.value) == 0) {
        victims.push_back(std::move(victim));  // spilled below, unlocked
      }
      sim_lru_.pop_back();
    }
  }
  if (victims.empty()) {
    return;
  }
  // Spill without the lock, like spill_evicted: serialization + IO are
  // the expensive part of an eviction.
  std::vector<bool> spilled(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    spilled[i] =
        write_spill_file(sim_table_path(cache_dir_, victims[i].signature),
                         sim_spill_document(*victims[i].table));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (spilled[i]) {
      sim_disk_index_.insert(victims[i].signature.value);
    }
  }
}

bool SweepCache::contains_sim(core::GridSignature signature) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sim_index_.find(signature.value) != sim_index_.end() ||
         sim_disk_index_.count(signature.value) != 0;
}

void SweepCache::spill_sim_locked(const SimEntry& entry) {
  if (!write_spill_file(sim_table_path(cache_dir_, entry.signature),
                        sim_spill_document(*entry.table))) {
    return;
  }
  sim_disk_index_.insert(entry.signature.value);
}

std::shared_ptr<const SimTable> SweepCache::load_sim_from_disk_locked(
    core::GridSignature signature) {
  if (cache_dir_.empty() || sim_disk_index_.count(signature.value) == 0) {
    return nullptr;
  }
  const fs::path path = sim_table_path(cache_dir_, signature);
  const auto reject = [&](const char* why, const std::string& detail) {
    warn(why, detail);
    ++disk_rejects_;
    sim_disk_index_.erase(signature.value);
  };

  SimTable loaded;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      reject("cannot open sim spill file", path.string());
      return nullptr;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const util::JsonValue document = util::JsonValue::parse(buffer.str());
    const util::JsonValue* format = document.find("format");
    const util::JsonValue* checksum = document.find("payload_fnv");
    const util::JsonValue* table_json = document.find("table");
    if (format == nullptr || format->as_string() != kSimSpillFormat ||
        checksum == nullptr || table_json == nullptr) {
      reject("rejecting sim spill file with unknown format", path.string());
      return nullptr;
    }
    const auto stored = core::GridSignature::from_hex(checksum->as_string());
    if (!stored || payload_checksum(table_json->dump()) != *stored) {
      reject("rejecting sim spill file whose payload checksum does not match",
             path.string());
      return nullptr;
    }
    loaded = sim_table_from_json(*table_json);
  } catch (const std::exception& error) {
    reject("rejecting unparseable sim spill file",
           path.string() + ": " + error.what());
    return nullptr;
  }

  // Content must hash back to the filename: a corrupt or foreign spill is
  // recomputed, never served. Sim signatures have no caller-provided
  // options — the SimParams travel inside the table.
  const core::GridSignature recomputed =
      sim_signature(loaded.points, loaded.kinds, loaded.params);
  if (recomputed != signature) {
    reject("rejecting sim spill file whose content does not match its signature",
           path.string() + ": content hashes to " + recomputed.hex());
    return nullptr;
  }

  ++disk_loads_;
  auto table = std::make_shared<const SimTable>(std::move(loaded));
  if (capacity_ == 0) {
    return table;
  }
  sim_lru_.push_front(SimEntry{signature, table});
  sim_index_[signature.value] = sim_lru_.begin();
  while (sim_lru_.size() > capacity_) {
    // Locked re-eviction (rare: once per reloaded entry). The victim is
    // usually disk-resident already, making this a pure in-memory pop.
    SimEntry& victim = sim_lru_.back();
    if (!cache_dir_.empty() &&
        sim_disk_index_.count(victim.signature.value) == 0) {
      spill_sim_locked(victim);
    }
    sim_index_.erase(victim.signature.value);
    sim_lru_.pop_back();
  }
  return table;
}

}  // namespace resilience::service
