#include "resilience/service/sweep_service.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "resilience/service/sim_service.hpp"

namespace resilience::service {

namespace {

/// Cache hits and joins deliver the already-finished table's cells in
/// point-major table order (a valid instance of the "delivery order may
/// vary" contract — contents are bit-identical to the live stream's).
/// Polls the token per cell like the runner does, so even a replay honors
/// deadlines/disconnects (in practice replays are memory-speed and finish
/// long before a sane deadline).
void replay(const core::SweepTable& table, core::CellSink* sink,
            const core::CancelToken& cancel) {
  if (sink == nullptr) {
    return;
  }
  for (const core::SweepCell& cell : table.cells) {
    if (cancel.cancelled()) {
      throw core::SweepCancelled(cancel.deadline_expired());
    }
    sink->on_cell(cell);
  }
}

/// Guards reuse against a 64-bit signature collision: a shared table may
/// only serve this submission if it is the table OF this grid. The hash
/// is not cryptographic and request bytes are client-controlled, so a
/// colliding grid must fall through to its own computation rather than
/// silently receive another grid's cells.
bool table_matches_grid(const core::SweepTable& table,
                        const std::vector<core::ScenarioPoint>& points,
                        const std::vector<core::PatternKind>& kinds) {
  if (table.kinds != kinds || table.points.size() != points.size()) {
    return false;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!core::points_bit_identical(table.points[i], points[i])) {
      return false;
    }
  }
  return true;
}

/// The SeedSource the runner consults on a seeded compute: per-chain
/// lookups against the cache's seed index (memory + verified disk).
/// Thread-safe — chains query it concurrently from the pool.
class CacheSeedSource final : public core::SeedSource {
 public:
  CacheSeedSource(SweepCache& cache, const core::SweepOptions& options)
      : cache_(cache), options_(options) {}

  std::vector<core::ChainSeed> seeds_for(
      const core::GridChain& chain) override {
    std::vector<core::ChainSeed> seeds = cache_.seeds_for(chain.key, options_);
    if (!seeds.empty()) {
      supplied_.fetch_add(1, std::memory_order_relaxed);
    }
    return seeds;
  }

  /// Number of chains that received at least one seed.
  [[nodiscard]] std::uint64_t supplied() const noexcept {
    return supplied_.load(std::memory_order_relaxed);
  }

 private:
  SweepCache& cache_;
  const core::SweepOptions& options_;
  std::atomic<std::uint64_t> supplied_{0};
};

}  // namespace

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_dir),
      sim_(std::make_unique<SimService>(&cache_, options_.sweep.pool)) {}

SweepService::~SweepService() = default;

SubmitResult SweepService::submit(const ScenarioRequest& request,
                                  core::CellSink* sink,
                                  core::CancelToken cancel) {
  core::SweepOptions sweep = options_.sweep;
  sweep.numeric_optimum = request.numeric_optimum;
  return submit_impl(request.grid, sweep, sink, request.reuse_seeds, cancel);
}

SubmitResult SweepService::submit(const core::ScenarioGrid& grid,
                                  core::CellSink* sink,
                                  core::CancelToken cancel) {
  return submit_impl(grid, options_.sweep, sink, /*reuse_seeds=*/true, cancel);
}

core::GridSignature SweepService::signature_for(
    const ScenarioRequest& request) const {
  core::SweepOptions sweep = options_.sweep;
  sweep.numeric_optimum = request.numeric_optimum;
  return core::grid_signature(request.grid, sweep);
}

ServiceStats SweepService::stats() const {
  ServiceStats stats;
  stats.submits = submits_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  stats.joined_in_flight = joins_.load(std::memory_order_relaxed);
  stats.tables_computed = tables_computed_.load(std::memory_order_relaxed);
  stats.seeded_computes = seeded_computes_.load(std::memory_order_relaxed);
  stats.deadline_timeouts = deadline_timeouts_.load(std::memory_order_relaxed);
  stats.cache_lookup_hits = cache_.hits();
  stats.cache_lookup_misses = cache_.misses();
  stats.seed_hits = cache_.seed_hits();
  stats.disk_loads = cache_.disk_loads();
  stats.disk_rejects = cache_.disk_rejects();
  stats.cache_size = cache_.size();
  stats.cache_capacity = cache_.capacity();
  stats.sim_submits = sim_->submits();
  stats.sim_cache_hits = sim_->cache_hits();
  stats.sim_disk_hits = sim_->disk_hits();
  stats.sim_cells = sim_->cells_computed();
  stats.sim_runs = sim_->runs_executed();
  stats.sim_early_stops = sim_->early_stops();
  stats.sim_runs_per_second = sim_->runs_per_second();
  return stats;
}

SubmitResult SweepService::submit_impl(const core::ScenarioGrid& grid,
                                       const core::SweepOptions& sweep,
                                       core::CellSink* sink, bool reuse_seeds,
                                       const core::CancelToken& cancel) {
  try {
    submits_.fetch_add(1, std::memory_order_relaxed);
    // One resolve serves validation, the signature and collision checks.
    const std::vector<core::ScenarioPoint> points = core::resolve_points(grid);
    const std::vector<core::PatternKind> kinds = grid.resolved_kinds();
    const core::GridSignature signature =
        core::grid_signature(points, kinds, sweep);

    // Cross-grid seeding only helps numeric sweeps; the sweep options the
    // seed source verifies disk loads against must be the signature's (no
    // seed_source field set, so the key/signature derivations agree).
    const bool seeds_enabled =
        reuse_seeds && options_.reuse_seeds && sweep.numeric_optimum;
    CacheSeedSource seed_source(cache_, sweep);

    const auto compute = [&](bool with_seeds) -> TablePtr {
      core::SweepOptions run_options = sweep;
      // Explicitly null on cold computes: a caller may have parked their own
      // seed source on ServiceOptions.sweep, and reuse_seeds=false (or a
      // collision recompute) must mean genuinely cold.
      run_options.seed_source = with_seeds ? &seed_source : nullptr;
      run_options.cancel = cancel;
      const core::SweepRunner runner(run_options);
      return sink != nullptr ? std::make_shared<const core::SweepTable>(
                                   runner.run(grid, *sink))
                             : std::make_shared<const core::SweepTable>(
                                   runner.run(grid));
    };

    // The reuse ladder retries from the top when a compute LEADER this
    // call was following gets cancelled by its own client's token — the
    // failure is the leader's, not ours; by the next iteration the table
    // may be cached (another leader won) or this call becomes the leader
    // under its own token. Our own cancellation always exits via throw.
    for (;;) {
      if (cancel.cancelled()) {
        throw core::SweepCancelled(cancel.deadline_expired());
      }

      bool disk_hit = false;
      if (TablePtr table = cache_.find(signature, sweep, &disk_hit)) {
        if (!table_matches_grid(*table, points, kinds)) {
          // Signature collision: compute this grid directly, bypassing the
          // cache (two colliding grids cannot share the signature-keyed
          // slot).
          TablePtr fresh = compute(/*with_seeds=*/false);
          tables_computed_.fetch_add(1, std::memory_order_relaxed);
          return {std::move(fresh), signature, /*cache_hit=*/false,
                  /*disk_hit=*/false, /*joined_in_flight=*/false,
                  /*seeded=*/false};
        }
        replay(*table, sink, cancel);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (disk_hit) {
          disk_hits_.fetch_add(1, std::memory_order_relaxed);
        }
        return {std::move(table), signature, /*cache_hit=*/true, disk_hit,
                /*joined_in_flight=*/false, /*seeded=*/false};
      }

      // Miss: either join a concurrent computation of the same signature
      // or become its leader. The promise lives on the heap so the leader
      // can fulfill it after dropping the lock.
      std::shared_ptr<std::promise<TablePtr>> promise;
      std::shared_future<TablePtr> future;
      {
        const std::lock_guard<std::mutex> lock(in_flight_mutex_);
        const auto it = in_flight_.find(signature.value);
        if (it != in_flight_.end()) {
          future = it->second;
        } else {
          promise = std::make_shared<std::promise<TablePtr>>();
          future = promise->get_future().share();
          in_flight_.emplace(signature.value, future);
        }
      }

      if (promise == nullptr) {  // follower: wait, then replay
        TablePtr table;
        try {
          table = future.get();  // rethrows the leader's failure
        } catch (const core::SweepCancelled&) {
          continue;  // the LEADER was cancelled, not us — retry the ladder
        }
        if (!table_matches_grid(*table, points, kinds)) {
          TablePtr fresh = compute(/*with_seeds=*/false);  // in-flight collision
          tables_computed_.fetch_add(1, std::memory_order_relaxed);
          return {std::move(fresh), signature, /*cache_hit=*/false,
                  /*disk_hit=*/false, /*joined_in_flight=*/false,
                  /*seeded=*/false};
        }
        replay(*table, sink, cancel);
        joins_.fetch_add(1, std::memory_order_relaxed);
        return {std::move(table), signature, /*cache_hit=*/false,
                /*disk_hit=*/false, /*joined_in_flight=*/true,
                /*seeded=*/false};
      }

      TablePtr table;
      try {
        table = compute(seeds_enabled);
      } catch (...) {
        promise->set_exception(std::current_exception());
        const std::lock_guard<std::mutex> lock(in_flight_mutex_);
        in_flight_.erase(signature.value);
        throw;
      }
      tables_computed_.fetch_add(1, std::memory_order_relaxed);
      const bool seeded = seed_source.supplied() > 0;
      if (seeded) {
        seeded_computes_.fetch_add(1, std::memory_order_relaxed);
      }

      // Publish to the cache — chains indexed so future related grids can
      // seed from this table — before waking joiners/erasing the in-flight
      // entry, so a submission arriving at any interleaving finds the
      // table through one of the reuse paths.
      cache_.insert(signature, table, core::grid_chains(grid, sweep));
      promise->set_value(table);
      {
        const std::lock_guard<std::mutex> lock(in_flight_mutex_);
        in_flight_.erase(signature.value);
      }
      return {std::move(table), signature, /*cache_hit=*/false,
              /*disk_hit=*/false, /*joined_in_flight=*/false, seeded};
    }
  } catch (const core::SweepCancelled& cancelled) {
    if (cancelled.deadline_expired()) {
      deadline_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

}  // namespace resilience::service
