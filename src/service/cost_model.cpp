#include "resilience/service/cost_model.hpp"

#include <algorithm>

#include "resilience/service/sim_service.hpp"
#include "resilience/service/sweep_service.hpp"

namespace resilience::service {

CostEstimate estimate_cost(const ScenarioRequest& request,
                           const SweepService* service) {
  CostEstimate estimate;
  const core::ScenarioGrid& grid = request.grid;

  if (request.simulate) {
    // Simulate requests are priced from their run budget — the cost the
    // admission controller/fair queue must bound is Monte Carlo draws,
    // not (n, m, W) searches. max_runs is the upper bound; target_ci can
    // only make cells cheaper.
    estimate.cells = grid.cell_count() * request.sim.weibull_shape.size() *
                     request.sim.faulty_ops.size();
    if (service != nullptr &&
        service->cache().contains_sim(service->sim().signature_for(request))) {
      estimate.identity_hit = true;
      estimate.units = static_cast<double>(estimate.cells) * kCostReplayCell;
      return estimate;
    }
    const double per_cell =
        std::max(kCostFirstOrderCell,
                 static_cast<double>(request.sim.max_runs) *
                     static_cast<double>(request.sim.patterns_per_run) /
                     kCostSimDrawsPerUnit);
    estimate.units = static_cast<double>(estimate.cells) * per_cell;
    return estimate;
  }

  estimate.cells = grid.cell_count();
  const double per_cell =
      request.numeric_optimum ? kCostColdCell : kCostFirstOrderCell;

  if (service == nullptr) {
    estimate.units = static_cast<double>(estimate.cells) * per_cell;
    return estimate;
  }

  // Identity tier first: an exact-signature hit replays the finished
  // table — cost is per-cell serialization, not search.
  if (service->cache().contains(service->signature_for(request))) {
    estimate.identity_hit = true;
    estimate.units = static_cast<double>(estimate.cells) * kCostReplayCell;
    return estimate;
  }

  // Miss: price chain by chain. The chain list needs the same effective
  // options the service will submit under (numeric_optimum is the only
  // per-request override).
  core::SweepOptions sweep = service->options().sweep;
  sweep.numeric_optimum = request.numeric_optimum;
  const std::vector<core::GridChain> chains = core::grid_chains(grid, sweep);
  estimate.chains = chains.size();
  const std::size_t cells_per_chain =
      chains.empty() ? 0 : estimate.cells / chains.size();

  const bool seeds_apply = request.numeric_optimum && request.reuse_seeds &&
                           service->options().reuse_seeds;
  if (!seeds_apply) {
    estimate.units = static_cast<double>(estimate.cells) * per_cell;
    return estimate;
  }
  for (const core::GridChain& chain : chains) {
    const bool seeded = service->cache().has_seeds(chain.key);
    if (seeded) {
      ++estimate.seeded_chains;
    }
    estimate.units += static_cast<double>(cells_per_chain) *
                      (seeded ? kCostSeededCell : per_cell);
  }
  return estimate;
}

LineCost estimate_line_cost(std::string_view line, const SweepService* service,
                            int default_deadline_ms) {
  LineCost cost;
  try {
    const ScenarioRequest request = ScenarioRequest::parse(line);
    cost.scenario = true;
    cost.id = request.id;
    cost.deadline_ms =
        request.deadline_ms > 0 ? request.deadline_ms : default_deadline_ms;
    cost.estimate = estimate_cost(request, service);
  } catch (...) {
    // Not a valid scenario request (ping/stats/malformed): the executor
    // answers it in microseconds, so it carries no scenario estimate.
    cost.scenario = false;
    cost.deadline_ms = 0;
  }
  return cost;
}

}  // namespace resilience::service
