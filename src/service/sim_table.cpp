#include "resilience/service/sim_table.hpp"

#include <cstring>

namespace resilience::service {

namespace {

/// FNV-1a 64 mixer, the same construction core/sweep.cpp uses for grid
/// signatures (its SignatureHasher is file-private, so the sim layer
/// carries its own copy of the ~10 lines rather than widening that API).
class Hasher {
 public:
  void mix(std::uint64_t value) noexcept {
    for (int shift = 0; shift < 64; shift += 8) {
      hash_ ^= (value >> shift) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void mix(double value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  void mix_tag(const char* tag) noexcept {
    for (const char* p = tag; *p != '\0'; ++p) {
      hash_ ^= static_cast<unsigned char>(*p);
      hash_ *= 1099511628211ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

bool bits_equal(double a, double b) noexcept {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

}  // namespace

core::GridSignature sim_signature(
    const std::vector<core::ScenarioPoint>& points,
    const std::vector<core::PatternKind>& kinds, const SimParams& params) {
  Hasher hasher;
  hasher.mix_tag("sim-v1");
  // The analytic identity of (points, kinds) under default options — the
  // sim path has no result-affecting SweepOptions of its own.
  hasher.mix(core::grid_signature(points, kinds, core::SweepOptions{}).value);
  hasher.mix(params.seed);
  hasher.mix(params.target_ci);
  hasher.mix(params.max_runs);
  hasher.mix(params.min_runs);
  hasher.mix(params.patterns_per_run);
  hasher.mix(static_cast<std::uint64_t>(params.weibull_shape.size()));
  for (const double shape : params.weibull_shape) {
    hasher.mix(shape);
  }
  hasher.mix(static_cast<std::uint64_t>(params.faulty_ops.size()));
  for (const double factor : params.faulty_ops) {
    hasher.mix(factor);
  }
  return core::GridSignature{hasher.value()};
}

std::uint64_t sim_cell_seed(const SimParams& params, core::PatternKind kind,
                            const core::ModelParams& point_params,
                            double weibull_shape, double faulty_ops) {
  Hasher hasher;
  hasher.mix_tag("sim-cell-v1");
  hasher.mix(params.seed);
  hasher.mix(static_cast<std::uint64_t>(kind));
  // Every resolved parameter the simulation reads, by bit pattern — the
  // same fields grid signatures mix per point.
  hasher.mix(point_params.costs.disk_checkpoint);
  hasher.mix(point_params.costs.memory_checkpoint);
  hasher.mix(point_params.costs.disk_recovery);
  hasher.mix(point_params.costs.memory_recovery);
  hasher.mix(point_params.costs.guaranteed_verification);
  hasher.mix(point_params.costs.partial_verification);
  hasher.mix(point_params.costs.recall);
  hasher.mix(point_params.rates.fail_stop);
  hasher.mix(point_params.rates.silent);
  hasher.mix(weibull_shape);
  hasher.mix(faulty_ops);
  return hasher.value();
}

bool sim_tables_bit_identical(const SimTable& a, const SimTable& b) noexcept {
  if (a.points.size() != b.points.size() || a.kinds != b.kinds ||
      a.cells.size() != b.cells.size() ||
      a.params.seed != b.params.seed ||
      !bits_equal(a.params.target_ci, b.params.target_ci) ||
      a.params.max_runs != b.params.max_runs ||
      a.params.min_runs != b.params.min_runs ||
      a.params.patterns_per_run != b.params.patterns_per_run ||
      a.params.weibull_shape.size() != b.params.weibull_shape.size() ||
      a.params.faulty_ops.size() != b.params.faulty_ops.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.params.weibull_shape.size(); ++i) {
    if (!bits_equal(a.params.weibull_shape[i], b.params.weibull_shape[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.params.faulty_ops.size(); ++i) {
    if (!bits_equal(a.params.faulty_ops[i], b.params.faulty_ops[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (!core::points_bit_identical(a.points[i], b.points[i])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const SimCell& x = a.cells[i];
    const SimCell& y = b.cells[i];
    if (x.point_index != y.point_index || x.kind != y.kind ||
        !bits_equal(x.weibull_shape, y.weibull_shape) ||
        !bits_equal(x.faulty_ops, y.faulty_ops) ||
        !bits_equal(x.mean, y.mean) || !bits_equal(x.ci_low, y.ci_low) ||
        !bits_equal(x.ci_high, y.ci_high) || x.runs != y.runs ||
        x.early_stopped != y.early_stopped) {
      return false;
    }
  }
  return true;
}

}  // namespace resilience::service
