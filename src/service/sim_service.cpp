#include "resilience/service/sim_service.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "resilience/core/first_order.hpp"
#include "resilience/sim/adaptive.hpp"
#include "resilience/sim/renewal.hpp"

namespace resilience::service {

namespace {

/// The faulty-operations axis: scales the fail-stop exposure of
/// NON-computation operations (verifications, checkpoints, recoveries) by
/// a factor, leaving computation windows untouched. Implemented as a time
/// dilation at operation sites — the wrapped model samples a window of
/// factor * length and the outcome maps back — so the inner model's
/// renewal state stays consistent and a factor of 1 is the identity.
class OpsScaledModel final : public sim::ErrorModelBase {
 public:
  OpsScaledModel(std::unique_ptr<sim::ErrorModelBase> inner, double factor)
      : inner_(std::move(inner)), factor_(factor) {}

  [[nodiscard]] sim::FailStopOutcome sample_fail_stop(double length) override {
    return inner_->sample_fail_stop(length);
  }

  [[nodiscard]] sim::FailStopOutcome sample_fail_stop_op(
      double length) override {
    if (factor_ <= 0.0) {
      // Error-free operations: no strike, and no RNG draw — the stream
      // must not depend on how many operations a pattern executes.
      return {false, length};
    }
    sim::FailStopOutcome outcome = inner_->sample_fail_stop(factor_ * length);
    outcome.time_survived /= factor_;  // map scaled time back to wall time
    return outcome;
  }

  [[nodiscard]] bool sample_silent(double length) override {
    return inner_->sample_silent(length);
  }

  [[nodiscard]] bool sample_detection(double recall) override {
    return inner_->sample_detection(recall);
  }

 private:
  std::unique_ptr<sim::ErrorModelBase> inner_;
  double factor_;
};

/// Model choice is a pure function of the cell's (shape, ops) axis values:
/// the default cell keeps the devirtualized Poisson fast path; any other
/// cell runs the renewal model (exponential in law when shape == 1), with
/// the ops wrapper stacked on when the factor is not 1.
sim::ErrorModelFactory make_model_factory(const core::ErrorRates& rates,
                                          double shape, double ops) {
  if (shape == 1.0 && ops == 1.0) {
    return {};
  }
  const sim::FailureDistribution distribution =
      shape == 1.0 ? sim::FailureDistribution::kExponential
                   : sim::FailureDistribution::kWeibull;
  return [rates, distribution, shape,
          ops](util::Xoshiro256 rng) -> std::unique_ptr<sim::ErrorModelBase> {
    std::unique_ptr<sim::ErrorModelBase> model =
        sim::make_renewal_model(rates, distribution, shape, rng);
    if (ops != 1.0) {
      model = std::make_unique<OpsScaledModel>(std::move(model), ops);
    }
    return model;
  };
}

void throw_if_cancelled(const core::CancelToken& cancel) {
  if (cancel.cancelled()) {
    throw core::SweepCancelled(cancel.deadline_expired());
  }
}

/// Collision guard, mirroring the sweep path's table_matches_grid: the
/// signature hash is not cryptographic, so a cached table is served only
/// when its content bit-matches the request's resolved content.
bool table_matches_request(const SimTable& table,
                           const std::vector<core::ScenarioPoint>& points,
                           const std::vector<core::PatternKind>& kinds,
                           const SimParams& params) {
  if (table.kinds != kinds || table.points.size() != points.size() ||
      !(table.params == params)) {
    return false;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!core::points_bit_identical(table.points[i], points[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

SimService::SimService(SweepCache* cache, util::ThreadPool* pool)
    : cache_(cache), pool_(pool) {}

core::GridSignature SimService::signature_for(
    const ScenarioRequest& request) const {
  return sim_signature(core::resolve_points(request.grid),
                       request.grid.resolved_kinds(), request.sim);
}

double SimService::runs_per_second() const noexcept {
  const std::uint64_t micros = compute_micros_.load(std::memory_order_relaxed);
  if (micros == 0) {
    return 0.0;
  }
  return static_cast<double>(runs_.load(std::memory_order_relaxed)) /
         (static_cast<double>(micros) * 1e-6);
}

SimSubmitResult SimService::submit(const ScenarioRequest& request,
                                   const SimCellFn& sink,
                                   core::CancelToken cancel) {
  if (!request.simulate) {
    throw std::invalid_argument(
        "SimService::submit: request is not a simulate request");
  }
  submits_.fetch_add(1, std::memory_order_relaxed);

  const std::vector<core::ScenarioPoint> points =
      core::resolve_points(request.grid);
  const std::vector<core::PatternKind> kinds = request.grid.resolved_kinds();

  SimSubmitResult out;
  out.signature = sim_signature(points, kinds, request.sim);

  if (cache_ != nullptr) {
    bool from_disk = false;
    std::shared_ptr<const SimTable> cached =
        cache_->find_sim(out.signature, &from_disk);
    if (cached != nullptr &&
        table_matches_request(*cached, points, kinds, request.sim)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (from_disk) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      // Replay in table order — the canonical wire order — polling the
      // token at cell granularity like the compute path does.
      for (const SimCell& cell : cached->cells) {
        throw_if_cancelled(cancel);
        if (sink) {
          sink(cell);
        }
      }
      out.table = std::move(cached);
      out.cache_hit = true;
      out.disk_hit = from_disk;
      return out;
    }
  }

  out.table = compute(request, sink, cancel);
  if (cache_ != nullptr) {
    cache_->insert_sim(out.signature, out.table);
  }
  return out;
}

std::shared_ptr<const SimTable> SimService::compute(
    const ScenarioRequest& request, const SimCellFn& sink,
    const core::CancelToken& cancel) {
  auto table = std::make_shared<SimTable>();
  table->points = core::resolve_points(request.grid);
  table->kinds = request.grid.resolved_kinds();
  table->params = request.sim;
  table->cells.reserve(table->cell_count());

  const auto check_cancel = [&cancel] { throw_if_cancelled(cancel); };
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t total_runs = 0;
  std::uint64_t early = 0;

  // Canonical order, sequentially: parallelism lives INSIDE each cell's
  // campaign (runs fan out on the pool), never across cells, so the
  // stream order — and with content-addressed per-cell seeds, the stream
  // bytes — cannot depend on the pool size.
  for (std::size_t p = 0; p < table->points.size(); ++p) {
    const core::ModelParams& params = table->points[p].params;
    for (const core::PatternKind kind : table->kinds) {
      const core::PatternSpec pattern =
          core::solve_first_order(kind, params).to_pattern(params.costs.recall);
      for (const double shape : table->params.weibull_shape) {
        for (const double ops : table->params.faulty_ops) {
          check_cancel();
          sim::AdaptiveConfig config;
          config.seed =
              sim_cell_seed(table->params, kind, params, shape, ops);
          config.target_ci = table->params.target_ci;
          config.max_runs = table->params.max_runs;
          config.min_runs = table->params.min_runs;
          config.patterns_per_run = table->params.patterns_per_run;
          config.pool = pool_;
          config.model_factory = make_model_factory(params.rates, shape, ops);
          config.check_cancel = check_cancel;
          const sim::AdaptiveResult result =
              sim::run_adaptive_monte_carlo(pattern, params, config);

          SimCell cell;
          cell.point_index = p;
          cell.kind = kind;
          cell.weibull_shape = shape;
          cell.faulty_ops = ops;
          cell.mean = result.mean_overhead();
          const double half = result.overhead_ci();
          cell.ci_low = cell.mean - half;
          cell.ci_high = cell.mean + half;
          cell.runs = result.runs;
          cell.early_stopped = result.early_stopped;

          total_runs += result.runs;
          if (result.early_stopped) {
            ++early;
          }
          table->cells.push_back(cell);
          if (sink) {
            sink(cell);
          }
        }
      }
    }
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  cells_.fetch_add(table->cells.size(), std::memory_order_relaxed);
  runs_.fetch_add(total_runs, std::memory_order_relaxed);
  early_stops_.fetch_add(early, std::memory_order_relaxed);
  compute_micros_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                            std::memory_order_relaxed);
  return table;
}

}  // namespace resilience::service
