#include "resilience/service/serialize.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "resilience/service/cost_model.hpp"
#include "resilience/service/sim_table.hpp"
#include "resilience/service/sweep_service.hpp"

namespace resilience::service {

namespace {

using util::JsonValue;

const JsonValue& require(const JsonValue& json, const char* field) {
  const JsonValue* value = json.find(field);
  if (value == nullptr) {
    throw std::runtime_error(std::string("serialize: missing field '") +
                             field + "'");
  }
  return *value;
}

double require_double(const JsonValue& json, const char* field) {
  return require(json, field).as_double();
}

std::size_t require_index(const JsonValue& json, const char* field) {
  const double value = require(json, field).as_double();
  if (!(value >= 0.0) || value != std::floor(value) || value > 9.007199254740992e15) {
    throw std::runtime_error(std::string("serialize: field '") + field +
                             "' is not a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

JsonValue to_json(const core::SweepCell& cell) {
  JsonValue first_order = JsonValue::object();
  first_order.set("segments_n", cell.first_order.segments_n);
  first_order.set("chunks_m", cell.first_order.chunks_m);
  first_order.set("rational_n", cell.first_order.rational_n);
  first_order.set("rational_m", cell.first_order.rational_m);
  first_order.set("work", cell.first_order.work);
  first_order.set("overhead", cell.first_order.overhead);
  first_order.set("error_free", cell.first_order.coefficients.error_free);
  first_order.set("reexecuted_work",
                  cell.first_order.coefficients.reexecuted_work);

  JsonValue out = JsonValue::object();
  out.set("point", cell.point_index);
  out.set("kind", core::pattern_name(cell.kind));
  out.set("first_order", std::move(first_order));
  out.set("exact_at_first_order", cell.exact_at_first_order);
  out.set("segments_n", cell.segments_n);
  out.set("chunks_m", cell.chunks_m);
  out.set("work", cell.work);
  out.set("overhead", cell.overhead);
  out.set("warm_started", cell.warm_started);
  return out;
}

core::SweepCell cell_from_json(const JsonValue& json) {
  core::SweepCell cell;
  cell.point_index = require_index(json, "point");
  cell.kind = core::pattern_kind_from_name(require(json, "kind").as_string());

  const JsonValue& first_order = require(json, "first_order");
  cell.first_order.kind = cell.kind;
  cell.first_order.segments_n = require_index(first_order, "segments_n");
  cell.first_order.chunks_m = require_index(first_order, "chunks_m");
  cell.first_order.rational_n = require_double(first_order, "rational_n");
  cell.first_order.rational_m = require_double(first_order, "rational_m");
  cell.first_order.work = require_double(first_order, "work");
  cell.first_order.overhead = require_double(first_order, "overhead");
  cell.first_order.coefficients.error_free =
      require_double(first_order, "error_free");
  cell.first_order.coefficients.reexecuted_work =
      require_double(first_order, "reexecuted_work");

  cell.exact_at_first_order = require_double(json, "exact_at_first_order");
  cell.segments_n = require_index(json, "segments_n");
  cell.chunks_m = require_index(json, "chunks_m");
  cell.work = require_double(json, "work");
  cell.overhead = require_double(json, "overhead");
  cell.warm_started = require(json, "warm_started").as_bool();
  return cell;
}

JsonValue to_json(const core::Platform& platform) {
  JsonValue out = JsonValue::object();
  out.set("name", platform.name);
  out.set("nodes", platform.nodes);
  out.set("fail_stop", platform.rates.fail_stop);
  out.set("silent", platform.rates.silent);
  out.set("disk_checkpoint", platform.disk_checkpoint);
  out.set("memory_checkpoint", platform.memory_checkpoint);
  return out;
}

core::Platform platform_from_json(const JsonValue& json) {
  core::Platform platform;
  platform.name = require(json, "name").as_string();
  platform.nodes = require_index(json, "nodes");
  platform.rates.fail_stop = require_double(json, "fail_stop");
  platform.rates.silent = require_double(json, "silent");
  platform.disk_checkpoint = require_double(json, "disk_checkpoint");
  platform.memory_checkpoint = require_double(json, "memory_checkpoint");
  return platform;
}

JsonValue to_json(const core::ModelParams& params) {
  JsonValue costs = JsonValue::object();
  costs.set("disk_checkpoint", params.costs.disk_checkpoint);
  costs.set("memory_checkpoint", params.costs.memory_checkpoint);
  costs.set("disk_recovery", params.costs.disk_recovery);
  costs.set("memory_recovery", params.costs.memory_recovery);
  costs.set("guaranteed_verification", params.costs.guaranteed_verification);
  costs.set("partial_verification", params.costs.partial_verification);
  costs.set("recall", params.costs.recall);
  JsonValue rates = JsonValue::object();
  rates.set("fail_stop", params.rates.fail_stop);
  rates.set("silent", params.rates.silent);
  JsonValue out = JsonValue::object();
  out.set("costs", std::move(costs));
  out.set("rates", std::move(rates));
  return out;
}

core::ModelParams params_from_json(const JsonValue& json) {
  core::ModelParams params;
  const JsonValue& costs = require(json, "costs");
  params.costs.disk_checkpoint = require_double(costs, "disk_checkpoint");
  params.costs.memory_checkpoint = require_double(costs, "memory_checkpoint");
  params.costs.disk_recovery = require_double(costs, "disk_recovery");
  params.costs.memory_recovery = require_double(costs, "memory_recovery");
  params.costs.guaranteed_verification =
      require_double(costs, "guaranteed_verification");
  params.costs.partial_verification =
      require_double(costs, "partial_verification");
  params.costs.recall = require_double(costs, "recall");
  const JsonValue& rates = require(json, "rates");
  params.rates.fail_stop = require_double(rates, "fail_stop");
  params.rates.silent = require_double(rates, "silent");
  return params;
}

JsonValue to_json(const core::ScenarioPoint& point) {
  JsonValue out = JsonValue::object();
  out.set("platform_index", point.platform_index);
  out.set("node_index", point.node_index);
  out.set("rate_index", point.rate_index);
  out.set("cost_index", point.cost_index);
  out.set("platform", to_json(point.platform));
  out.set("params", to_json(point.params));
  return out;
}

core::ScenarioPoint point_from_json(const JsonValue& json) {
  core::ScenarioPoint point;
  point.platform_index = require_index(json, "platform_index");
  point.node_index = require_index(json, "node_index");
  point.rate_index = require_index(json, "rate_index");
  point.cost_index = require_index(json, "cost_index");
  point.platform = platform_from_json(require(json, "platform"));
  point.params = params_from_json(require(json, "params"));
  return point;
}

JsonValue to_json(const core::SweepTable& table) {
  JsonValue kinds = JsonValue::array();
  for (const core::PatternKind kind : table.kinds) {
    kinds.push_back(core::pattern_name(kind));
  }
  JsonValue points = JsonValue::array();
  for (const core::ScenarioPoint& point : table.points) {
    points.push_back(to_json(point));
  }
  JsonValue cells = JsonValue::array();
  for (const core::SweepCell& cell : table.cells) {
    cells.push_back(to_json(cell));
  }
  JsonValue out = JsonValue::object();
  out.set("type", "sweep_table");
  out.set("kinds", std::move(kinds));
  out.set("points", std::move(points));
  out.set("cells", std::move(cells));
  return out;
}

core::SweepTable table_from_json(const JsonValue& json) {
  core::SweepTable table;
  for (const JsonValue& kind : require(json, "kinds").as_array()) {
    table.kinds.push_back(core::pattern_kind_from_name(kind.as_string()));
  }
  for (const JsonValue& point : require(json, "points").as_array()) {
    table.points.push_back(point_from_json(point));
  }
  for (const JsonValue& cell : require(json, "cells").as_array()) {
    table.cells.push_back(cell_from_json(cell));
  }
  if (table.kinds.empty() ||
      table.cells.size() != table.points.size() * table.kinds.size()) {
    throw std::runtime_error(
        "serialize: cell count does not match points x kinds");
  }
  // Each cell must sit in its point-major/family-minor slot, or cell()'s
  // index arithmetic would silently return the wrong cell on permuted
  // (e.g. stream-reassembled) input.
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    const core::SweepCell& cell = table.cells[i];
    if (cell.point_index != i / table.kinds.size() ||
        cell.kind != table.kinds[i % table.kinds.size()]) {
      throw std::runtime_error(
          "serialize: cell " + std::to_string(i) +
          " is out of point-major/family-minor order (point " +
          std::to_string(cell.point_index) + ", kind " +
          core::pattern_name(cell.kind) + ")");
    }
  }
  table.index_kinds();
  return table;
}

std::string cell_line(const std::string& request_id,
                      core::GridSignature signature,
                      const core::SweepCell& cell) {
  JsonValue line = JsonValue::object();
  line.set("type", "cell");
  line.set("request", request_id);
  line.set("signature", signature.hex());
  const JsonValue cell_json = to_json(cell);
  for (const auto& [key, value] : cell_json.as_object()) {
    line.set(key, value);
  }
  return line.dump();
}

JsonValue to_json(const SimCell& cell) {
  JsonValue out = JsonValue::object();
  out.set("point", cell.point_index);
  out.set("kind", core::pattern_name(cell.kind));
  out.set("weibull_shape", cell.weibull_shape);
  out.set("faulty_ops", cell.faulty_ops);
  out.set("mean", cell.mean);
  out.set("ci_low", cell.ci_low);
  out.set("ci_high", cell.ci_high);
  out.set("runs", cell.runs);
  out.set("early_stopped", cell.early_stopped);
  return out;
}

SimCell sim_cell_from_json(const JsonValue& json) {
  SimCell cell;
  cell.point_index = require_index(json, "point");
  cell.kind = core::pattern_kind_from_name(require(json, "kind").as_string());
  cell.weibull_shape = require_double(json, "weibull_shape");
  cell.faulty_ops = require_double(json, "faulty_ops");
  cell.mean = require_double(json, "mean");
  cell.ci_low = require_double(json, "ci_low");
  cell.ci_high = require_double(json, "ci_high");
  cell.runs = static_cast<std::uint64_t>(require_index(json, "runs"));
  cell.early_stopped = require(json, "early_stopped").as_bool();
  return cell;
}

JsonValue to_json(const SimTable& table) {
  JsonValue kinds = JsonValue::array();
  for (const core::PatternKind kind : table.kinds) {
    kinds.push_back(core::pattern_name(kind));
  }
  JsonValue points = JsonValue::array();
  for (const core::ScenarioPoint& point : table.points) {
    points.push_back(to_json(point));
  }
  JsonValue shapes = JsonValue::array();
  for (const double shape : table.params.weibull_shape) {
    shapes.push_back(shape);
  }
  JsonValue ops = JsonValue::array();
  for (const double factor : table.params.faulty_ops) {
    ops.push_back(factor);
  }
  JsonValue sim = JsonValue::object();
  sim.set("seed", table.params.seed);
  sim.set("target_ci", table.params.target_ci);
  sim.set("max_runs", table.params.max_runs);
  sim.set("min_runs", table.params.min_runs);
  sim.set("patterns_per_run", table.params.patterns_per_run);
  sim.set("weibull_shape", std::move(shapes));
  sim.set("faulty_ops", std::move(ops));
  JsonValue cells = JsonValue::array();
  for (const SimCell& cell : table.cells) {
    cells.push_back(to_json(cell));
  }
  JsonValue out = JsonValue::object();
  out.set("type", "sim_table");
  out.set("kinds", std::move(kinds));
  out.set("points", std::move(points));
  out.set("sim", std::move(sim));
  out.set("cells", std::move(cells));
  return out;
}

SimTable sim_table_from_json(const JsonValue& json) {
  SimTable table;
  for (const JsonValue& kind : require(json, "kinds").as_array()) {
    table.kinds.push_back(core::pattern_kind_from_name(kind.as_string()));
  }
  for (const JsonValue& point : require(json, "points").as_array()) {
    table.points.push_back(point_from_json(point));
  }
  const JsonValue& sim = require(json, "sim");
  table.params.seed =
      static_cast<std::uint64_t>(require_index(sim, "seed"));
  table.params.target_ci = require_double(sim, "target_ci");
  table.params.max_runs =
      static_cast<std::uint64_t>(require_index(sim, "max_runs"));
  table.params.min_runs =
      static_cast<std::uint64_t>(require_index(sim, "min_runs"));
  table.params.patterns_per_run =
      static_cast<std::uint64_t>(require_index(sim, "patterns_per_run"));
  table.params.weibull_shape.clear();
  for (const JsonValue& shape : require(sim, "weibull_shape").as_array()) {
    table.params.weibull_shape.push_back(shape.as_double());
  }
  table.params.faulty_ops.clear();
  for (const JsonValue& factor : require(sim, "faulty_ops").as_array()) {
    table.params.faulty_ops.push_back(factor.as_double());
  }
  for (const JsonValue& cell : require(json, "cells").as_array()) {
    table.cells.push_back(sim_cell_from_json(cell));
  }
  if (table.kinds.empty() || table.params.weibull_shape.empty() ||
      table.params.faulty_ops.empty() ||
      table.cells.size() != table.cell_count()) {
    throw std::runtime_error(
        "serialize: sim cell count does not match points x kinds x axes");
  }
  // Each cell must sit in its canonical point/family/shape/ops slot, or
  // cell_index() arithmetic would return the wrong cell on permuted
  // (e.g. stream-reassembled) input.
  const std::size_t shapes_n = table.params.weibull_shape.size();
  const std::size_t ops_n = table.params.faulty_ops.size();
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    const SimCell& cell = table.cells[i];
    const std::size_t ops_index = i % ops_n;
    const std::size_t shape_index = (i / ops_n) % shapes_n;
    const std::size_t kind_index = (i / (ops_n * shapes_n)) % table.kinds.size();
    const std::size_t point_index = i / (ops_n * shapes_n * table.kinds.size());
    if (cell.point_index != point_index ||
        cell.kind != table.kinds[kind_index] ||
        cell.weibull_shape != table.params.weibull_shape[shape_index] ||
        cell.faulty_ops != table.params.faulty_ops[ops_index]) {
      throw std::runtime_error("serialize: sim cell " + std::to_string(i) +
                               " is out of canonical order (point " +
                               std::to_string(cell.point_index) + ", kind " +
                               core::pattern_name(cell.kind) + ")");
    }
  }
  return table;
}

JsonValue to_json(const ServiceStats& stats) {
  JsonValue service = JsonValue::object();
  service.set("submits", stats.submits);
  service.set("cache_hits", stats.cache_hits);
  service.set("disk_hits", stats.disk_hits);
  service.set("joined_in_flight", stats.joined_in_flight);
  service.set("tables_computed", stats.tables_computed);
  service.set("seeded_computes", stats.seeded_computes);
  service.set("deadline_timeouts", stats.deadline_timeouts);
  JsonValue cache = JsonValue::object();
  cache.set("size", stats.cache_size);
  cache.set("capacity", stats.cache_capacity);
  cache.set("hits", stats.cache_lookup_hits);
  cache.set("misses", stats.cache_lookup_misses);
  cache.set("seed_hits", stats.seed_hits);
  cache.set("disk_loads", stats.disk_loads);
  cache.set("disk_rejects", stats.disk_rejects);
  JsonValue sim = JsonValue::object();
  sim.set("submits", stats.sim_submits);
  sim.set("cache_hits", stats.sim_cache_hits);
  sim.set("disk_hits", stats.sim_disk_hits);
  sim.set("cells", stats.sim_cells);
  sim.set("runs", stats.sim_runs);
  sim.set("early_stops", stats.sim_early_stops);
  sim.set("runs_per_second", stats.sim_runs_per_second);
  JsonValue out = JsonValue::object();
  out.set("service", std::move(service));
  out.set("cache", std::move(cache));
  out.set("sim", std::move(sim));
  return out;
}

JsonValue to_json(const CostEstimate& estimate) {
  JsonValue out = JsonValue::object();
  out.set("units", estimate.units);
  out.set("cells", estimate.cells);
  out.set("chains", estimate.chains);
  out.set("seeded_chains", estimate.seeded_chains);
  out.set("identity_hit", estimate.identity_hit);
  return out;
}

std::string stats_line(const std::string& request_id, const ServiceStats& stats,
                       const util::JsonValue* transport) {
  JsonValue line = JsonValue::object();
  line.set("type", "stats");
  line.set("request", request_id);
  const JsonValue blocks = to_json(stats);
  for (const auto& [key, value] : blocks.as_object()) {
    line.set(key, value);
  }
  if (transport != nullptr) {
    line.set("transport", *transport);
  }
  return line.dump();
}

std::string done_line(const std::string& request_id,
                      core::GridSignature signature,
                      const core::SweepTable& table, bool cache_hit,
                      bool joined_in_flight, const ServiceStats* stats,
                      const CostEstimate* cost) {
  JsonValue kinds = JsonValue::array();
  for (const core::PatternKind kind : table.kinds) {
    kinds.push_back(core::pattern_name(kind));
  }
  JsonValue line = JsonValue::object();
  line.set("type", "done");
  line.set("request", request_id);
  line.set("signature", signature.hex());
  line.set("points", table.points.size());
  line.set("kinds", std::move(kinds));
  line.set("cells", table.cells.size());
  line.set("cache_hit", cache_hit);
  line.set("joined_in_flight", joined_in_flight);
  if (stats != nullptr) {
    JsonValue stats_json = to_json(*stats);
    if (cost != nullptr) {
      // Appended AFTER the service/cache blocks: existing consumers match
      // the stats prefix textually, and insertion order is emission order.
      stats_json.set("cost", to_json(*cost));
    }
    line.set("stats", std::move(stats_json));
  }
  return line.dump();
}

std::string done_line(const std::string& request_id,
                      core::GridSignature signature,
                      const core::SweepTable& table, bool cache_hit,
                      bool joined_in_flight,
                      const util::JsonValue& stats_block) {
  JsonValue kinds = JsonValue::array();
  for (const core::PatternKind kind : table.kinds) {
    kinds.push_back(core::pattern_name(kind));
  }
  JsonValue line = JsonValue::object();
  line.set("type", "done");
  line.set("request", request_id);
  line.set("signature", signature.hex());
  line.set("points", table.points.size());
  line.set("kinds", std::move(kinds));
  line.set("cells", table.cells.size());
  line.set("cache_hit", cache_hit);
  line.set("joined_in_flight", joined_in_flight);
  line.set("stats", stats_block);
  return line.dump();
}

std::string sim_cell_line(const std::string& request_id,
                          core::GridSignature signature, const SimCell& cell) {
  JsonValue line = JsonValue::object();
  line.set("type", "cell");
  line.set("request", request_id);
  line.set("signature", signature.hex());
  const JsonValue cell_json = to_json(cell);
  for (const auto& [key, value] : cell_json.as_object()) {
    line.set(key, value);
  }
  return line.dump();
}

namespace {

JsonValue sim_done_json(const std::string& request_id,
                        core::GridSignature signature, const SimTable& table,
                        bool cache_hit) {
  JsonValue kinds = JsonValue::array();
  for (const core::PatternKind kind : table.kinds) {
    kinds.push_back(core::pattern_name(kind));
  }
  std::uint64_t total_runs = 0;
  for (const SimCell& cell : table.cells) {
    total_runs += cell.runs;
  }
  JsonValue line = JsonValue::object();
  line.set("type", "done");
  line.set("request", request_id);
  line.set("signature", signature.hex());
  line.set("mode", "simulate");
  line.set("points", table.points.size());
  line.set("kinds", std::move(kinds));
  line.set("cells", table.cells.size());
  line.set("runs", total_runs);
  line.set("cache_hit", cache_hit);
  return line;
}

}  // namespace

std::string sim_done_line(const std::string& request_id,
                          core::GridSignature signature, const SimTable& table,
                          bool cache_hit, const ServiceStats* stats,
                          const CostEstimate* cost) {
  JsonValue line = sim_done_json(request_id, signature, table, cache_hit);
  if (stats != nullptr) {
    JsonValue stats_json = to_json(*stats);
    if (cost != nullptr) {
      stats_json.set("cost", to_json(*cost));
    }
    line.set("stats", std::move(stats_json));
  }
  return line.dump();
}

std::string sim_done_line(const std::string& request_id,
                          core::GridSignature signature, const SimTable& table,
                          bool cache_hit, const util::JsonValue& stats_block) {
  JsonValue line = sim_done_json(request_id, signature, table, cache_hit);
  line.set("stats", stats_block);
  return line.dump();
}

std::string pong_line(const std::string& request_id) {
  JsonValue line = JsonValue::object();
  line.set("type", "pong");
  line.set("request", request_id);
  return line.dump();
}

std::string error_line(const std::string& request_id, const std::string& field,
                       const std::string& message) {
  JsonValue line = JsonValue::object();
  line.set("type", "error");
  line.set("request", request_id);
  line.set("field", field);
  line.set("message", message);
  return line.dump();
}

std::string overloaded_line(const std::string& request_id,
                            std::int64_t retry_after_ms) {
  // An error line (same leading fields, so clients that only know
  // "type":"error" still terminate the request) extended with the
  // machine-readable shed marker. "field" is empty: the request itself
  // was fine — the server's queue was not.
  JsonValue line = JsonValue::object();
  line.set("type", "error");
  line.set("request", request_id);
  line.set("field", "");
  line.set("message",
           "server overloaded: request shed at admission; retry after " +
               std::to_string(retry_after_ms) + " ms");
  line.set("code", "overloaded");
  line.set("retry_after_ms", retry_after_ms);
  return line.dump();
}

JsonlCellSink::JsonlCellSink(std::ostream& os, std::string request_id,
                             core::GridSignature signature)
    : os_(os), request_id_(std::move(request_id)), signature_(signature) {}

void JsonlCellSink::on_cell(const core::SweepCell& cell) {
  os_ << cell_line(request_id_, signature_, cell) << '\n';
  ++cells_;
}

}  // namespace resilience::service
