#include "resilience/service/scenario_request.hpp"

#include <cmath>
#include <utility>

#include "resilience/core/platform.hpp"
#include "resilience/service/serialize.hpp"

namespace resilience::service {

namespace {

using util::JsonValue;

std::string elem(const std::string& axis, std::size_t index) {
  return axis + "[" + std::to_string(index) + "]";
}

double as_number(const JsonValue& value, const std::string& path) {
  if (!value.is_number()) {
    throw RequestError(path, "expected a number");
  }
  return value.as_double();
}

double finite_number(const JsonValue& value, const std::string& path) {
  const double number = as_number(value, path);
  if (!std::isfinite(number)) {
    throw RequestError(path, "expected a finite number");
  }
  return number;
}

std::size_t positive_integer(const JsonValue& value, const std::string& path) {
  const double number = as_number(value, path);
  if (!(number > 0.0) || number != std::floor(number) || number > 1e15) {
    throw RequestError(path, "expected a positive integer");
  }
  return static_cast<std::size_t>(number);
}

const JsonValue::Array& as_axis_array(const JsonValue& value,
                                      const std::string& path) {
  if (!value.is_array()) {
    throw RequestError(path, "expected an array");
  }
  return value.as_array();
}

/// Rejects typo'd member names: every object field must be consumed by one
/// of the `known` names.
void reject_unknown_fields(const JsonValue& object, const std::string& path,
                           std::initializer_list<const char*> known) {
  for (const auto& [key, value] : object.as_object()) {
    bool recognized = false;
    for (const char* name : known) {
      if (key == name) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      throw RequestError(path.empty() ? key : path + "." + key,
                         "unknown field '" + key + "'");
    }
  }
}

core::Platform parse_platform(const JsonValue& value, const std::string& path) {
  if (value.is_string()) {
    try {
      return core::platform_by_name(value.as_string());
    } catch (const std::invalid_argument& error) {
      throw RequestError(path, error.what());
    }
  }
  if (!value.is_object()) {
    throw RequestError(path, "expected a catalog name or a platform object");
  }
  reject_unknown_fields(value, path,
                        {"name", "nodes", "fail_stop", "silent",
                         "disk_checkpoint", "memory_checkpoint"});
  core::Platform platform;
  if (const JsonValue* name = value.find("name")) {
    if (!name->is_string()) {
      throw RequestError(path + ".name", "expected a string");
    }
    platform.name = name->as_string();
  } else {
    platform.name = "custom";
  }
  const auto required = [&](const char* field) -> const JsonValue& {
    const JsonValue* member = value.find(field);
    if (member == nullptr) {
      throw RequestError(path + "." + field, "missing required field");
    }
    return *member;
  };
  platform.nodes = positive_integer(required("nodes"), path + ".nodes");
  platform.rates.fail_stop =
      finite_number(required("fail_stop"), path + ".fail_stop");
  platform.rates.silent = finite_number(required("silent"), path + ".silent");
  platform.disk_checkpoint =
      finite_number(required("disk_checkpoint"), path + ".disk_checkpoint");
  platform.memory_checkpoint = finite_number(required("memory_checkpoint"),
                                             path + ".memory_checkpoint");
  if (platform.rates.fail_stop < 0.0) {
    throw RequestError(path + ".fail_stop", "rate must be >= 0");
  }
  if (platform.rates.silent < 0.0) {
    throw RequestError(path + ".silent", "rate must be >= 0");
  }
  if (!(platform.disk_checkpoint > 0.0)) {
    throw RequestError(path + ".disk_checkpoint", "cost must be positive");
  }
  if (!(platform.memory_checkpoint > 0.0)) {
    throw RequestError(path + ".memory_checkpoint", "cost must be positive");
  }
  return platform;
}

/// Optional-field override objects: {"fail_stop": 2.0} etc. Every member
/// must be a finite number; unknown members are rejected.
core::RateFactors parse_rate_factors(const JsonValue& value,
                                     const std::string& path) {
  if (!value.is_object()) {
    throw RequestError(path, "expected an object");
  }
  reject_unknown_fields(value, path, {"fail_stop", "silent"});
  core::RateFactors factors;
  if (const JsonValue* fail_stop = value.find("fail_stop")) {
    factors.fail_stop = finite_number(*fail_stop, path + ".fail_stop");
  }
  if (const JsonValue* silent = value.find("silent")) {
    factors.silent = finite_number(*silent, path + ".silent");
  }
  return factors;
}

core::CostOverride parse_cost_override(const JsonValue& value,
                                       const std::string& path) {
  if (!value.is_object()) {
    throw RequestError(path, "expected an object");
  }
  reject_unknown_fields(value, path,
                        {"disk_checkpoint", "partial_verification", "recall"});
  core::CostOverride override_value;
  if (const JsonValue* disk = value.find("disk_checkpoint")) {
    override_value.disk_checkpoint =
        finite_number(*disk, path + ".disk_checkpoint");
  }
  if (const JsonValue* partial = value.find("partial_verification")) {
    override_value.partial_verification =
        finite_number(*partial, path + ".partial_verification");
  }
  if (const JsonValue* recall = value.find("recall")) {
    override_value.recall = finite_number(*recall, path + ".recall");
  }
  return override_value;
}

/// The `sim` block of a simulate request. Budgets are capped like every
/// other request-supplied integer (1e15: exact in a double); axis values
/// must be finite and positive (weibull_shape) / non-negative (faulty_ops).
SimParams parse_sim_params(const JsonValue& value) {
  if (!value.is_object()) {
    throw RequestError("sim", "expected an object");
  }
  reject_unknown_fields(value, "sim",
                        {"seed", "target_ci", "max_runs", "min_runs",
                         "patterns_per_run", "weibull_shape", "faulty_ops"});
  SimParams sim;
  if (const JsonValue* seed = value.find("seed")) {
    const double number = as_number(*seed, "sim.seed");
    if (!(number >= 0.0) || number != std::floor(number) || number > 1e15) {
      throw RequestError("sim.seed", "expected a non-negative integer");
    }
    sim.seed = static_cast<std::uint64_t>(number);
  }
  if (const JsonValue* target = value.find("target_ci")) {
    const double number = finite_number(*target, "sim.target_ci");
    if (!(number >= 0.0) || number >= 1.0) {
      throw RequestError("sim.target_ci",
                         "expected a relative CI in [0, 1) (0 = run to "
                         "max_runs)");
    }
    sim.target_ci = number;
  }
  if (const JsonValue* max_runs = value.find("max_runs")) {
    sim.max_runs = positive_integer(*max_runs, "sim.max_runs");
  }
  if (const JsonValue* min_runs = value.find("min_runs")) {
    sim.min_runs = positive_integer(*min_runs, "sim.min_runs");
  }
  if (sim.min_runs > sim.max_runs) {
    throw RequestError("sim.min_runs", "must be <= sim.max_runs");
  }
  if (const JsonValue* patterns = value.find("patterns_per_run")) {
    sim.patterns_per_run = positive_integer(*patterns, "sim.patterns_per_run");
  }
  if (const JsonValue* shapes = value.find("weibull_shape")) {
    const auto& axis = as_axis_array(*shapes, "sim.weibull_shape");
    if (axis.empty()) {
      throw RequestError("sim.weibull_shape", "need at least one value");
    }
    sim.weibull_shape.clear();
    for (std::size_t i = 0; i < axis.size(); ++i) {
      const std::string path = elem("sim.weibull_shape", i);
      const double shape = finite_number(axis[i], path);
      if (!(shape > 0.0)) {
        throw RequestError(path, "shape must be positive");
      }
      sim.weibull_shape.push_back(shape);
    }
  }
  if (const JsonValue* ops = value.find("faulty_ops")) {
    const auto& axis = as_axis_array(*ops, "sim.faulty_ops");
    if (axis.empty()) {
      throw RequestError("sim.faulty_ops", "need at least one value");
    }
    sim.faulty_ops.clear();
    for (std::size_t i = 0; i < axis.size(); ++i) {
      const std::string path = elem("sim.faulty_ops", i);
      const double factor = finite_number(axis[i], path);
      if (!(factor >= 0.0)) {
        throw RequestError(path, "factor must be >= 0");
      }
      sim.faulty_ops.push_back(factor);
    }
  }
  return sim;
}

}  // namespace

RequestError::RequestError(std::string field_path, const std::string& message)
    : std::runtime_error(field_path.empty() ? message
                                            : field_path + ": " + message),
      field(std::move(field_path)) {}

ScenarioRequest ScenarioRequest::from_json(const JsonValue& json) {
  if (!json.is_object()) {
    throw RequestError("", "request must be a JSON object");
  }
  reject_unknown_fields(json, "",
                        {"id", "platforms", "node_counts", "rate_factors",
                         "cost_overrides", "kinds", "numeric_optimum",
                         "reuse_seeds", "stats", "deadline_ms", "mode",
                         "sim"});

  ScenarioRequest request;
  if (const JsonValue* id = json.find("id")) {
    if (!id->is_string()) {
      throw RequestError("id", "expected a string");
    }
    request.id = id->as_string();
  }

  const JsonValue* platforms = json.find("platforms");
  if (platforms == nullptr) {
    throw RequestError("platforms", "missing required field");
  }
  const auto& platform_axis = as_axis_array(*platforms, "platforms");
  if (platform_axis.empty()) {
    throw RequestError("platforms", "need at least one platform");
  }
  for (std::size_t i = 0; i < platform_axis.size(); ++i) {
    request.grid.platforms.push_back(
        parse_platform(platform_axis[i], elem("platforms", i)));
  }

  if (const JsonValue* node_counts = json.find("node_counts")) {
    const auto& axis = as_axis_array(*node_counts, "node_counts");
    for (std::size_t i = 0; i < axis.size(); ++i) {
      request.grid.node_counts.push_back(
          positive_integer(axis[i], elem("node_counts", i)));
    }
  }
  if (const JsonValue* rate_factors = json.find("rate_factors")) {
    const auto& axis = as_axis_array(*rate_factors, "rate_factors");
    for (std::size_t i = 0; i < axis.size(); ++i) {
      request.grid.rate_factors.push_back(
          parse_rate_factors(axis[i], elem("rate_factors", i)));
    }
  }
  if (const JsonValue* cost_overrides = json.find("cost_overrides")) {
    const auto& axis = as_axis_array(*cost_overrides, "cost_overrides");
    for (std::size_t i = 0; i < axis.size(); ++i) {
      request.grid.cost_overrides.push_back(
          parse_cost_override(axis[i], elem("cost_overrides", i)));
    }
  }
  if (const JsonValue* kinds = json.find("kinds")) {
    const auto& axis = as_axis_array(*kinds, "kinds");
    for (std::size_t i = 0; i < axis.size(); ++i) {
      if (!axis[i].is_string()) {
        throw RequestError(elem("kinds", i), "expected a pattern name string");
      }
      try {
        request.grid.kinds.push_back(
            core::pattern_kind_from_name(axis[i].as_string()));
      } catch (const std::invalid_argument& error) {
        throw RequestError(elem("kinds", i), error.what());
      }
    }
  }
  if (const JsonValue* numeric = json.find("numeric_optimum")) {
    if (!numeric->is_bool()) {
      throw RequestError("numeric_optimum", "expected a boolean");
    }
    request.numeric_optimum = numeric->as_bool();
  }
  if (const JsonValue* reuse = json.find("reuse_seeds")) {
    if (!reuse->is_bool()) {
      throw RequestError("reuse_seeds", "expected a boolean");
    }
    request.reuse_seeds = reuse->as_bool();
  }
  if (const JsonValue* stats = json.find("stats")) {
    if (!stats->is_bool()) {
      throw RequestError("stats", "expected a boolean");
    }
    request.include_stats = stats->as_bool();
  }
  if (const JsonValue* deadline = json.find("deadline_ms")) {
    const double number = as_number(*deadline, "deadline_ms");
    if (!(number >= 0.0) || number != std::floor(number) || number > 1e9) {
      throw RequestError("deadline_ms",
                         "expected a non-negative integer number of "
                         "milliseconds (0 = no deadline)");
    }
    request.deadline_ms = static_cast<int>(number);
  }
  if (const JsonValue* mode = json.find("mode")) {
    if (!mode->is_string()) {
      throw RequestError("mode", "expected a string");
    }
    const std::string& name = mode->as_string();
    if (name == "simulate") {
      request.simulate = true;
    } else if (name != "sweep") {
      throw RequestError("mode",
                         "unknown mode '" + name +
                             "' (expected \"sweep\" or \"simulate\")");
    }
  }
  if (const JsonValue* sim = json.find("sim")) {
    if (!request.simulate) {
      throw RequestError("sim",
                         "only valid with \"mode\": \"simulate\"");
    }
    request.sim = parse_sim_params(*sim);
  }

  // Axis semantics (positivity, override sentinels) and the resolved
  // parameter combinations: surface every problem at parse time, not when
  // a worker thread touches the point. The thrown messages already name
  // the axis and index ("ScenarioGrid.rate_factors[2]: ...").
  try {
    (void)core::resolve_points(request.grid);
  } catch (const std::invalid_argument& error) {
    throw RequestError("", error.what());
  }
  return request;
}

ScenarioRequest ScenarioRequest::parse(std::string_view text) {
  JsonValue json;
  try {
    json = JsonValue::parse(text);
  } catch (const util::JsonError& error) {
    throw RequestError("", std::string("invalid JSON: ") + error.what());
  }
  return from_json(json);
}

JsonValue ScenarioRequest::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("id", id);
  JsonValue platforms = JsonValue::array();
  for (const core::Platform& platform : grid.platforms) {
    platforms.push_back(service::to_json(platform));
  }
  out.set("platforms", std::move(platforms));
  if (!grid.node_counts.empty()) {
    JsonValue node_counts = JsonValue::array();
    for (const std::size_t nodes : grid.node_counts) {
      node_counts.push_back(nodes);
    }
    out.set("node_counts", std::move(node_counts));
  }
  if (!grid.rate_factors.empty()) {
    JsonValue rate_factors = JsonValue::array();
    for (const core::RateFactors& factors : grid.rate_factors) {
      JsonValue entry = JsonValue::object();
      entry.set("fail_stop", factors.fail_stop);
      entry.set("silent", factors.silent);
      rate_factors.push_back(std::move(entry));
    }
    out.set("rate_factors", std::move(rate_factors));
  }
  if (!grid.cost_overrides.empty()) {
    JsonValue cost_overrides = JsonValue::array();
    for (const core::CostOverride& override_value : grid.cost_overrides) {
      JsonValue entry = JsonValue::object();
      if (override_value.disk_checkpoint >= 0.0) {
        entry.set("disk_checkpoint", override_value.disk_checkpoint);
      }
      if (override_value.partial_verification >= 0.0) {
        entry.set("partial_verification", override_value.partial_verification);
      }
      if (override_value.recall >= 0.0) {
        entry.set("recall", override_value.recall);
      }
      cost_overrides.push_back(std::move(entry));
    }
    out.set("cost_overrides", std::move(cost_overrides));
  }
  if (!grid.kinds.empty()) {
    JsonValue kinds = JsonValue::array();
    for (const core::PatternKind kind : grid.kinds) {
      kinds.push_back(core::pattern_name(kind));
    }
    out.set("kinds", std::move(kinds));
  }
  out.set("numeric_optimum", numeric_optimum);
  out.set("reuse_seeds", reuse_seeds);
  if (include_stats) {  // default-off flag stays absent, like the axes
    out.set("stats", true);
  }
  if (deadline_ms > 0) {  // the 0 default stays absent too
    out.set("deadline_ms", deadline_ms);
  }
  if (simulate) {
    out.set("mode", "simulate");
    // Every sim field is emitted explicitly (defaults included): the
    // router round-trips sub-requests through this serialization, and a
    // budget that silently fell back to a shard-side default would break
    // the byte-identity contract.
    JsonValue sim_json = JsonValue::object();
    sim_json.set("seed", sim.seed);
    sim_json.set("target_ci", sim.target_ci);
    sim_json.set("max_runs", sim.max_runs);
    sim_json.set("min_runs", sim.min_runs);
    sim_json.set("patterns_per_run", sim.patterns_per_run);
    JsonValue shapes = JsonValue::array();
    for (const double shape : sim.weibull_shape) {
      shapes.push_back(shape);
    }
    sim_json.set("weibull_shape", std::move(shapes));
    JsonValue ops = JsonValue::array();
    for (const double factor : sim.faulty_ops) {
      ops.push_back(factor);
    }
    sim_json.set("faulty_ops", std::move(ops));
    out.set("sim", std::move(sim_json));
  }
  return out;
}

}  // namespace resilience::service
