#include "resilience/service/jsonl_session.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "resilience/service/cost_model.hpp"
#include "resilience/service/sim_service.hpp"

namespace resilience::service {

namespace {

/// The sink a scenario request streams through: forwards formatted cell
/// lines (unless the client is gone) and optionally keeps the raw cells
/// for the outcome hook. The runner serializes on_cell calls, so no
/// locking here.
class SessionSink final : public core::CellSink {
 public:
  SessionSink(const std::string& request_id, core::GridSignature signature,
              bool stream, bool collect,
              std::function<void(std::string&&)> forward,
              std::shared_ptr<const std::atomic<bool>> cancelled)
      : request_id_(request_id),
        signature_(signature),
        stream_(stream),
        collect_(collect),
        forward_(std::move(forward)),
        cancelled_(std::move(cancelled)) {}

  void on_cell(const core::SweepCell& cell) override {
    if (collect_) {
      cells_.push_back(cell);
    }
    if (stream_ && !(cancelled_ != nullptr &&
                     cancelled_->load(std::memory_order_acquire))) {
      forward_(cell_line(request_id_, signature_, cell));
    }
  }

  [[nodiscard]] std::vector<core::SweepCell>& cells() noexcept {
    return cells_;
  }

 private:
  const std::string& request_id_;  ///< outlives the sink (owned by caller)
  core::GridSignature signature_;
  bool stream_;
  bool collect_;
  std::function<void(std::string&&)> forward_;
  std::shared_ptr<const std::atomic<bool>> cancelled_;
  std::vector<core::SweepCell> cells_;
};

}  // namespace

bool is_request_line(std::string_view line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  return first != std::string_view::npos && line[first] != '#';
}

JsonlSession::JsonlSession(SweepService& service, LineFn emit, Options options,
                           std::shared_ptr<const std::atomic<bool>> cancelled)
    : service_(service),
      emit_(std::move(emit)),
      options_(options),
      cancelled_(std::move(cancelled)) {}

void JsonlSession::emit(std::string line, bool end_of_response) {
  if (!cancelled()) {
    emit_(std::move(line), end_of_response);
  }
}

void JsonlSession::handle_line(std::string_view line) {
  ++lines_;
  if (!is_request_line(line)) {
    return;  // blank lines and comments between requests are fine
  }
  if (cancelled()) {
    return;  // client is gone; don't start work on its behalf
  }
  const std::string default_id = "line-" + std::to_string(lines_);

  // One parse serves the type dispatch and the request constructor.
  util::JsonValue json;
  try {
    json = util::JsonValue::parse(line);
  } catch (const util::JsonError& error) {
    errors_ = true;
    emit(error_line(default_id, "",
                    std::string("invalid JSON: ") + error.what()),
         true);
    return;
  }

  if (json.is_object()) {
    if (const util::JsonValue* type = json.find("type")) {
      std::string id = default_id;
      if (const util::JsonValue* id_field = json.find("id")) {
        if (!id_field->is_string()) {
          errors_ = true;
          emit(error_line(default_id, "id", "expected a string"), true);
          return;
        }
        id = id_field->as_string();
      }
      const bool is_stats = type->is_string() && type->as_string() == "stats";
      const bool is_ping = type->is_string() && type->as_string() == "ping";
      if (!is_stats && !is_ping) {
        errors_ = true;
        emit(error_line(id, "type",
                        type->is_string()
                            ? "unknown request type '" + type->as_string() +
                                  "'"
                            : std::string("expected a string")),
             true);
        return;
      }
      // Same strictness as scenario requests: typo'd members must not be
      // silently ignored.
      for (const auto& [key, value] : json.as_object()) {
        if (key != "type" && key != "id") {
          errors_ = true;
          emit(error_line(id, key, "unknown field '" + key + "'"), true);
          return;
        }
      }
      if (is_ping) {
        emit(pong_line(id), true);
      } else if (options_.transport_stats) {
        const util::JsonValue transport = options_.transport_stats();
        emit(stats_line(id, service_.stats(), &transport), true);
      } else {
        emit(stats_line(id, service_.stats()), true);
      }
      return;
    }
  }

  ScenarioRequest request;
  try {
    request = ScenarioRequest::from_json(json);
  } catch (const RequestError& error) {
    errors_ = true;
    emit(error_line(default_id, error.field, error.what()), true);
    return;
  }
  if (request.id.empty()) {
    request.id = default_id;
  }

  // Compute budget: the request's own deadline wins; the session default
  // covers requests that state none. Anchored here — execution start —
  // so transport/queue wait never eats into the stated budget.
  const int deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms
                              : options_.default_deadline_ms;
  core::CancelToken cancel(cancelled_);
  if (deadline_ms > 0) {
    cancel.set_deadline(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms));
  }

  try {
    if (request.simulate) {
      // Server-side budget cap: refused at admission, before any compute
      // — the error names the field so clients can lower their ask.
      if (options_.sim_max_runs > 0 &&
          request.sim.max_runs > options_.sim_max_runs) {
        errors_ = true;
        emit(error_line(request.id, "sim.max_runs",
                        "exceeds the server cap of " +
                            std::to_string(options_.sim_max_runs) +
                            " runs per cell"),
             true);
        return;
      }
      const core::GridSignature signature = service_.sim().signature_for(request);
      const CostEstimate cost = request.include_stats
                                    ? estimate_cost(request, &service_)
                                    : CostEstimate{};
      SimCellFn sink;
      if (options_.stream) {
        sink = [this, &request, signature](const SimCell& cell) {
          if (!cancelled()) {
            emit_(sim_cell_line(request.id, signature, cell), false);
          }
        };
      }
      const SimSubmitResult result =
          service_.sim().submit(request, sink, cancel);
      const ServiceStats stats =
          request.include_stats ? service_.stats() : ServiceStats{};
      emit(sim_done_line(request.id, result.signature, *result.table,
                         result.cache_hit,
                         request.include_stats ? &stats : nullptr,
                         request.include_stats ? &cost : nullptr),
           true);
      return;
    }
    const core::GridSignature signature = service_.signature_for(request);
    // Price the request BEFORE submitting: the estimate must reflect the
    // cache state an admission controller saw, not the state after this
    // very request published its table. Only when the client asked for
    // stats — the probe is cheap but not free.
    const CostEstimate cost = request.include_stats
                                  ? estimate_cost(request, &service_)
                                  : CostEstimate{};
    SessionSink sink(
        request.id, signature, options_.stream, options_.collect,
        [this](std::string&& cell) { emit_(std::move(cell), false); },
        cancelled_);
    const bool need_sink = options_.stream || options_.collect;
    const SubmitResult result =
        service_.submit(request, need_sink ? &sink : nullptr, cancel);
    const ServiceStats stats =
        request.include_stats ? service_.stats() : ServiceStats{};
    emit(done_line(request.id, result.signature, *result.table,
                   result.cache_hit, result.joined_in_flight,
                   request.include_stats ? &stats : nullptr,
                   request.include_stats ? &cost : nullptr),
         true);
    if (outcome_) {
      outcome_(Outcome{std::move(request), result, std::move(sink.cells())});
    }
  } catch (const core::SweepCancelled& cancelled) {
    if (!cancelled.deadline_expired()) {
      return;  // disconnect cancellation: the client is gone, stay silent
    }
    errors_ = true;
    emit(error_line(request.id, "deadline_ms",
                    "deadline of " + std::to_string(deadline_ms) +
                        " ms exceeded before the sweep completed"),
         true);
  } catch (const std::exception& error) {
    // Validation ran at parse time, so this is an engine/runtime failure
    // (resource exhaustion, cache IO); the protocol answer is an error
    // line, not a dropped connection or a dead server.
    errors_ = true;
    emit(error_line(request.id, "",
                    std::string("internal error: ") + error.what()),
         true);
  }
}

}  // namespace resilience::service
